//! Sharded parallel path-table construction.
//!
//! Algorithm 2 is embarrassingly parallel across network entry ports: the
//! traversal from one entry port never reads state produced by another. What
//! serializes the sequential build is the single BDD [`Manager`] — every
//! `and` on the hot path mutates the shared arena and caches.
//!
//! The parallel build removes that bottleneck with *sharded managers*:
//!
//! 1. transfer predicates are computed once in the main manager (exactly as
//!    the sequential build does);
//! 2. entry ports are partitioned into contiguous shards, one per worker;
//! 3. each worker creates a private manager, seeds it by importing the
//!    shared predicates ([`Manager::import`] — structural translation that
//!    preserves canonicity), and traverses its shard with zero locking;
//! 4. the main thread imports each shard's path entries and reach records
//!    back into the main manager, in shard order.
//!
//! Because shards are contiguous and merged in order, and because a
//! traversal's output depends only on its entry port, the merged table is
//! *identical* to the sequential one: same pairs, same per-pair path order,
//! same hop sequences and tags, and — by canonicity of import — the same
//! header-set functions. The only nondeterminism-shaped difference is BDD
//! handle numbering in intermediate worker arenas, which never escapes.

use std::collections::HashMap;

use veridp_bdd::{Bdd, ImportMemo, Manager};
use veridp_bloom::BloomTag;
use veridp_packet::{PortNo, PortRef, SwitchId, MAX_PATH_LENGTH};
use veridp_switch::FlowRule;
use veridp_topo::Topology;

use crate::headerspace::HeaderSpace;
use crate::path_table::{PathEntry, PathTable, ReachRecord, Traversal};
use crate::predicates::SwitchPredicates;

/// Everything a worker sends back: its private arena plus results whose
/// handles still point into it.
struct ShardResult {
    mgr: Manager,
    entries: HashMap<(PortRef, PortRef), Vec<PathEntry>>,
    reach: HashMap<SwitchId, Vec<ReachRecord>>,
}

/// Traverse one shard of entry ports against a worker-private manager.
fn run_shard(
    topo: &Topology,
    preds: &HashMap<SwitchId, SwitchPredicates>,
    src_mgr: &Manager,
    ports: &[PortRef],
    tag_bits: u32,
    track_reach: bool,
) -> ShardResult {
    let mut mgr = Manager::new(src_mgr.num_vars());
    let mut memo = ImportMemo::new();
    let local_preds: HashMap<SwitchId, SwitchPredicates> = preds
        .iter()
        .map(|(s, p)| (*s, p.translated(src_mgr, &mut mgr, &mut memo)))
        .collect();
    let mut entries = HashMap::new();
    let mut reach = HashMap::new();
    let mut t = Traversal {
        topo,
        preds: &local_preds,
        tag_bits,
        max_hops: MAX_PATH_LENGTH as usize,
        track_reach,
        entries: &mut entries,
        reach: &mut reach,
    };
    for &inport in ports {
        t.traverse(
            &mut mgr,
            inport,
            inport,
            Bdd::TRUE,
            Vec::new(),
            BloomTag::empty(tag_bits),
        );
    }
    ShardResult {
        mgr,
        entries,
        reach,
    }
}

impl PathTable {
    /// Build the table as [`PathTable::build`] does, but traversing entry
    /// ports on `threads` worker threads, each with a private sharded BDD
    /// manager. The result is semantically identical to the sequential
    /// build — same pairs, hops, tags, and header sets — for any thread
    /// count.
    ///
    /// `threads` is clamped to `[1, entry ports]`; `threads <= 1` still
    /// runs the sharded path (one worker), so timing it measures the true
    /// sharding overhead.
    pub fn build_parallel(
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<FlowRule>>,
        hs: &mut HeaderSpace,
        tag_bits: u32,
        threads: usize,
    ) -> Self {
        let mut table = PathTable::new_empty(topo, rules, tag_bits, true);
        for info in topo.switches() {
            let ports: Vec<PortNo> = (1..=info.num_ports).map(PortNo).collect();
            let list = rules.get(&info.id).map_or(&[][..], |v| v.as_slice());
            table.preds.insert(
                info.id,
                SwitchPredicates::from_rules(info.id, &ports, list, hs),
            );
        }
        let entry_ports: Vec<PortRef> = topo
            .host_ports()
            .into_iter()
            .filter(|p| topo.is_terminal_port(*p))
            .collect();
        if entry_ports.is_empty() {
            return table;
        }

        let workers = threads.clamp(1, entry_ports.len());
        let chunk = entry_ports.len().div_ceil(workers);
        let preds = &table.preds;
        let src_mgr: &Manager = hs.mgr_ref();
        // Contiguous shards, joined in order: merge order equals the
        // sequential build's entry-port order.
        let results: Vec<ShardResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = entry_ports
                .chunks(chunk)
                .map(|ports| {
                    scope.spawn(move || run_shard(topo, preds, src_mgr, ports, tag_bits, true))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        for shard in results {
            let mut memo = ImportMemo::new();
            for (pair, list) in shard.entries {
                // Entry-port disjointness makes pairs disjoint across
                // shards, so this is a pure extend — no cross-shard merge.
                let dst = table.entries.entry(pair).or_default();
                for e in list {
                    let headers = hs.mgr().import(&shard.mgr, e.headers, &mut memo);
                    dst.push(PathEntry {
                        headers,
                        hops: e.hops,
                        tag: e.tag,
                    });
                }
            }
            for (s, recs) in shard.reach {
                let dst = table.reach.entry(s).or_default();
                for r in recs {
                    let headers = hs.mgr().import(&shard.mgr, r.headers, &mut memo);
                    dst.push(ReachRecord { headers, ..r });
                }
            }
        }
        table
    }
}
