//! The BDD header space: 5-tuple headers as Boolean functions over 104
//! variables (§4.1).
//!
//! Wildcard expressions need e.g. 16 unions to say `dst_port ≠ 22`; the BDD
//! says it in one `not`. All header-set algebra in the path table goes
//! through this type.

use veridp_bdd::{Bdd, ImportMemo, Manager};
use veridp_packet::{FieldLayout, FiveTuple, HEADER_BITS};
use veridp_switch::{Match, PortRange};

use crate::backend::HeaderSetBackend;

/// A header field, identifying a bit range in the BDD variable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    SrcIp,
    DstIp,
    Proto,
    SrcPort,
    DstPort,
}

impl Field {
    fn offset(self) -> u32 {
        match self {
            Field::SrcIp => FieldLayout::SRC_IP,
            Field::DstIp => FieldLayout::DST_IP,
            Field::Proto => FieldLayout::PROTO,
            Field::SrcPort => FieldLayout::SRC_PORT,
            Field::DstPort => FieldLayout::DST_PORT,
        }
    }

    fn width(self) -> u32 {
        match self {
            Field::SrcIp | Field::DstIp => 32,
            Field::Proto => 8,
            Field::SrcPort | Field::DstPort => 16,
        }
    }
}

/// The manager plus field-aware constructors. One instance backs one
/// [`crate::PathTable`]; handles from different header spaces must not mix.
#[derive(Debug)]
pub struct HeaderSpace {
    mgr: Manager,
}

impl Default for HeaderSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl HeaderSpace {
    /// A fresh 104-variable space.
    pub fn new() -> Self {
        HeaderSpace {
            mgr: Manager::new(HEADER_BITS),
        }
    }

    /// Access the underlying manager (for set algebra on handles).
    pub fn mgr(&mut self) -> &mut Manager {
        &mut self.mgr
    }

    /// Read-only manager access.
    pub fn mgr_ref(&self) -> &Manager {
        &self.mgr
    }

    /// Headers whose `field` equals `value` on the top `plen` bits.
    fn prefix(&mut self, field: Field, value: u64, plen: u32) -> Bdd {
        debug_assert!(plen <= field.width());
        let off = field.offset();
        let lits: Vec<(u32, bool)> = (0..plen)
            .map(|i| (off + i, (value >> (field.width() - 1 - i)) & 1 == 1))
            .collect();
        self.mgr.cube(&lits)
    }

    /// Headers with `src_ip` in `ip/plen`.
    pub fn src_prefix(&mut self, ip: u32, plen: u8) -> Bdd {
        self.prefix(Field::SrcIp, ip as u64, plen as u32)
    }

    /// Headers with `dst_ip` in `ip/plen`.
    pub fn dst_prefix(&mut self, ip: u32, plen: u8) -> Bdd {
        self.prefix(Field::DstIp, ip as u64, plen as u32)
    }

    /// Headers with the given protocol.
    pub fn proto_is(&mut self, proto: u8) -> Bdd {
        self.prefix(Field::Proto, proto as u64, 8)
    }

    /// Headers whose `field` (as unsigned) is `<= bound`.
    fn le(&mut self, field: Field, bound: u64) -> Bdd {
        let off = field.offset();
        let w = field.width();
        // Build bottom-up from the LSB: le_k = BDD over bits k..w-1.
        let mut acc = Bdd::TRUE;
        for i in (0..w).rev() {
            let var = self.mgr.var(off + i);
            let bit = (bound >> (w - 1 - i)) & 1 == 1;
            acc = if bit {
                // bound bit 1: var=0 → anything below accepted; var=1 → recurse.
                let hi = self.mgr.and(var, acc);
                let lo = self.mgr.not(var);
                self.mgr.or(lo, hi)
            } else {
                // bound bit 0: var=1 → too big; var=0 → recurse.
                let nv = self.mgr.not(var);
                self.mgr.and(nv, acc)
            };
        }
        acc
    }

    /// Headers whose `field` is `>= bound`.
    fn ge(&mut self, field: Field, bound: u64) -> Bdd {
        if bound == 0 {
            return Bdd::TRUE;
        }
        let lt = self.le(field, bound - 1);
        self.mgr.not(lt)
    }

    fn range(&mut self, field: Field, lo: u64, hi: u64) -> Bdd {
        let max = if field.width() == 64 {
            u64::MAX
        } else {
            (1u64 << field.width()) - 1
        };
        if lo == 0 && hi >= max {
            return Bdd::TRUE;
        }
        let ge = self.ge(field, lo);
        let le = self.le(field, hi);
        self.mgr.and(ge, le)
    }

    /// Headers with `src_ip` in the inclusive range `[lo, hi]`.
    ///
    /// Non-prefix-aligned ranges arise from set differences of prefixes —
    /// the atom backend's partition pieces are exactly such ranges, and the
    /// differential test suite reconstructs them here.
    pub fn src_ip_range(&mut self, lo: u32, hi: u32) -> Bdd {
        self.range(Field::SrcIp, lo as u64, hi as u64)
    }

    /// Headers with `dst_ip` in the inclusive range `[lo, hi]`.
    pub fn dst_ip_range(&mut self, lo: u32, hi: u32) -> Bdd {
        self.range(Field::DstIp, lo as u64, hi as u64)
    }

    /// Headers with the protocol in the inclusive range `[lo, hi]`.
    pub fn proto_range(&mut self, lo: u8, hi: u8) -> Bdd {
        self.range(Field::Proto, lo as u64, hi as u64)
    }

    /// Headers with `src_port` in the inclusive range.
    pub fn src_port_range(&mut self, r: PortRange) -> Bdd {
        self.range(Field::SrcPort, r.lo as u64, r.hi as u64)
    }

    /// Headers with `dst_port` in the inclusive range.
    pub fn dst_port_range(&mut self, r: PortRange) -> Bdd {
        self.range(Field::DstPort, r.lo as u64, r.hi as u64)
    }

    /// The header set matched by a rule's fields, *ignoring* its `in_port`
    /// qualifier (ports are handled by the per-port predicate computation).
    pub fn match_set(&mut self, m: &Match) -> Bdd {
        let mut acc = self.dst_prefix(m.dst_ip, m.dst_plen);
        let s = self.src_prefix(m.src_ip, m.src_plen);
        acc = self.mgr.and(acc, s);
        if let Some(p) = m.proto {
            let pb = self.proto_is(p);
            acc = self.mgr.and(acc, pb);
        }
        if !m.src_port.is_any() {
            let sp = self.src_port_range(m.src_port);
            acc = self.mgr.and(acc, sp);
        }
        if !m.dst_port.is_any() {
            let dp = self.dst_port_range(m.dst_port);
            acc = self.mgr.and(acc, dp);
        }
        acc
    }

    /// The singleton set containing exactly `h`.
    pub fn header_singleton(&mut self, h: &FiveTuple) -> Bdd {
        let bits = h.to_bits();
        let lits: Vec<(u32, bool)> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as u32, b))
            .collect();
        self.mgr.cube(&lits)
    }

    /// Membership test `h ∈ set` — the `header ≺ p.headers` of Algorithm 3.
    ///
    /// Direct BDD evaluation: O(path depth), no intermediate BDD built.
    pub fn contains(&self, set: Bdd, h: &FiveTuple) -> bool {
        self.mgr.eval(set, &h.to_bits())
    }

    /// A deterministic witness header from a non-empty set.
    pub fn witness(&self, set: Bdd) -> Option<FiveTuple> {
        self.mgr
            .any_sat(set)
            .map(|bits| FiveTuple::from_bits(&bits))
    }

    /// A pseudo-random witness header driven by `pick` (e.g. a seeded RNG).
    pub fn random_witness(&self, set: Bdd, pick: impl FnMut(u32) -> bool) -> Option<FiveTuple> {
        self.mgr
            .random_sat(set, pick)
            .map(|bits| FiveTuple::from_bits(&bits))
    }
}

/// The BDD backend: sets are hash-consed ROBDD handles, so canonicity comes
/// directly from the manager.
impl HeaderSetBackend for HeaderSpace {
    type Set = Bdd;
    type Memo = ImportMemo;

    const NAME: &'static str = "bdd";

    fn full(&self) -> Bdd {
        Bdd::TRUE
    }

    fn empty(&self) -> Bdd {
        Bdd::FALSE
    }

    fn from_match(&mut self, m: &Match) -> Bdd {
        self.match_set(m)
    }

    fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.mgr.and(a, b)
    }

    fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.mgr.or(a, b)
    }

    fn diff(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.mgr.diff(a, b)
    }

    fn is_empty(&self, s: Bdd) -> bool {
        s.is_false()
    }

    fn is_full(&self, s: Bdd) -> bool {
        s.is_true()
    }

    fn is_subset(&mut self, a: Bdd, b: Bdd) -> bool {
        self.mgr.diff(a, b).is_false()
    }

    fn contains(&self, s: Bdd, h: &FiveTuple) -> bool {
        HeaderSpace::contains(self, s, h)
    }

    fn witness(&self, s: Bdd) -> Option<FiveTuple> {
        HeaderSpace::witness(self, s)
    }

    fn random_witness(&self, s: Bdd, pick: impl FnMut(u32) -> bool) -> Option<FiveTuple> {
        HeaderSpace::random_witness(self, s, pick)
    }

    fn sat_count(&self, s: Bdd) -> u128 {
        self.mgr.sat_count(s)
    }

    fn size_metric(&self) -> usize {
        self.mgr.node_count()
    }

    fn fork_worker(&self) -> Self {
        HeaderSpace {
            mgr: Manager::new(self.mgr.num_vars()),
        }
    }

    fn import(&mut self, src: &Self, s: Bdd, memo: &mut ImportMemo) -> Bdd {
        self.mgr.import(&src.mgr, s, memo)
    }
}
