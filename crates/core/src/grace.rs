//! Epoch-grace verification: a bounded ring of recently-retired path entries.
//!
//! Reports travel in-band while the path table mutates underneath them
//! (§4.4), so a packet sampled under epoch *N* can arrive at the server after
//! an incremental update has already moved the table to epoch *N+1* and
//! deleted the very path the packet (correctly!) followed. Verified naively,
//! that report fails and raises a spurious alarm.
//!
//! The fix: every incremental update, before shrinking (Phase 2a of
//! §4.4), snapshots the `(headers, tag)` of each path
//! entry it is about to mutate into a [`RetiredRecord`] stamped with the last
//! epoch at which those entries were valid. Records live in a bounded
//! [`RetiredRing`]; a report that fails against the *current* table but was
//! sampled at an *older* epoch is re-checked against every ring record whose
//! validity covers the report's epoch ([`PathTable::grace_check`]) and passes
//! if a retired path admits its header with an equal tag.
//!
//! # Soundness / tuning
//!
//! Grace can only turn a failure into a Pass for a path the control plane
//! *did* sanction within the last `depth` updates — it is exactly as
//! trustworthy as the table itself was `≤ depth` epochs ago. The exposure is
//! a genuinely-faulty packet whose corrupt trajectory happens to match a
//! recently-retired path; that window is bounded by the ring depth (default
//! [`DEFAULT_GRACE_DEPTH`]) and further absorbed by K-of-N alarm confirmation
//! (a faulty *switch* keeps producing failures across epochs, while a grace
//! coincidence does not repeat once the record ages out). Deeper rings
//! tolerate longer report-in-flight times at the cost of a wider acceptance
//! window; depth 0 disables grace entirely.

use std::collections::{HashMap, VecDeque};

use veridp_bloom::BloomTag;
use veridp_obs as obs;
use veridp_packet::{PortRef, TagReport};

use crate::backend::HeaderSetBackend;
use crate::headerspace::HeaderSpace;
use crate::path_table::PathTable;
use crate::verify::VerifyOutcome;

/// How many retired update generations [`RetiredRing`] keeps by default.
pub const DEFAULT_GRACE_DEPTH: usize = 8;

/// The `(headers, tag)` of one path entry at the moment an incremental
/// update retired (mutated or pruned) it. Hops are deliberately not kept:
/// grace only needs Algorithm-3 semantics (containment + tag equality).
pub struct RetiredEntry<B: HeaderSetBackend = HeaderSpace> {
    pub headers: B::Set,
    pub tag: BloomTag,
}

impl<B: HeaderSetBackend> Clone for RetiredEntry<B> {
    fn clone(&self) -> Self {
        RetiredEntry {
            headers: self.headers,
            tag: self.tag,
        }
    }
}

impl<B: HeaderSetBackend> std::fmt::Debug for RetiredEntry<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetiredEntry")
            .field("headers", &self.headers)
            .field("tag", &self.tag)
            .finish()
    }
}

/// Everything one incremental update retired, stamped with the last epoch at
/// which these entries were part of the live table.
pub struct RetiredRecord<B: HeaderSetBackend = HeaderSpace> {
    /// Reports sampled at epochs `<= valid_until` may match this record;
    /// reports sampled later post-date the retirement and get no grace.
    pub valid_until: u64,
    /// Retired entries, grouped by `(inport, outport)` pair.
    pub pairs: HashMap<(PortRef, PortRef), Vec<RetiredEntry<B>>>,
}

impl<B: HeaderSetBackend> std::fmt::Debug for RetiredRecord<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetiredRecord")
            .field("valid_until", &self.valid_until)
            .field("pairs", &self.pairs.len())
            .finish()
    }
}

/// Bounded FIFO of [`RetiredRecord`]s, newest at the back.
pub struct RetiredRing<B: HeaderSetBackend = HeaderSpace> {
    depth: usize,
    records: VecDeque<RetiredRecord<B>>,
    evictions: u64,
}

impl<B: HeaderSetBackend> std::fmt::Debug for RetiredRing<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetiredRing")
            .field("depth", &self.depth)
            .field("records", &self.records.len())
            .field("evictions", &self.evictions)
            .finish()
    }
}

impl<B: HeaderSetBackend> RetiredRing<B> {
    /// An empty ring keeping at most `depth` update generations.
    pub fn new(depth: usize) -> Self {
        RetiredRing {
            depth,
            records: VecDeque::with_capacity(depth.min(64)),
            evictions: 0,
        }
    }

    /// Maximum number of retired update generations kept.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Change the ring depth, evicting oldest records if shrinking.
    pub fn set_depth(&mut self, depth: usize) {
        self.depth = depth;
        while self.records.len() > depth {
            self.records.pop_front();
            self.evictions += 1;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted over the ring's lifetime (capacity pressure signal:
    /// a nonzero rate under steady traffic means in-flight reports may
    /// outlive their grace window).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Append one update's retirements, evicting the oldest record past
    /// `depth`. A zero-depth ring drops the record immediately.
    pub fn push(&mut self, record: RetiredRecord<B>) {
        if self.depth == 0 {
            self.evictions += 1;
            obs::counter!("veridp_grace_ring_evictions_total").inc();
            return;
        }
        self.records.push_back(record);
        if self.records.len() > self.depth {
            self.records.pop_front();
            self.evictions += 1;
            obs::counter!("veridp_grace_ring_evictions_total").inc();
        }
        obs::gauge!("veridp_grace_ring_records").set(self.records.len() as i64);
    }

    /// Whether any retired path covering the report's sampling epoch admits
    /// its header with an equal tag (Algorithm-3 Pass semantics against
    /// retired state). Scans newest-first: recent retirements are the
    /// likeliest grace candidates for an in-flight report.
    pub fn admits(&self, report: &TagReport, hs: &B) -> bool {
        let pair = (report.inport, report.outport);
        for rec in self.records.iter().rev() {
            if rec.valid_until < report.epoch {
                continue;
            }
            if let Some(list) = rec.pairs.get(&pair) {
                if list
                    .iter()
                    .any(|e| e.tag == report.tag && hs.contains(e.headers, &report.header))
                {
                    return true;
                }
            }
        }
        false
    }

    /// Drop every record (used on full rebuilds, where no retired state can
    /// be meaningfully carried over).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Copy the ring into another backend instance, translating every
    /// retired header set via [`HeaderSetBackend::import`]. Handles in
    /// `self` must belong to `src`; the returned ring's handles belong to
    /// `dst`. Used when cloning a whole table into a snapshot buffer
    /// ([`crate::snapshot`]): grace verdicts against the copy must be
    /// identical to grace verdicts against the original.
    pub(crate) fn translated(&self, src: &B, dst: &mut B, memo: &mut B::Memo) -> RetiredRing<B> {
        RetiredRing {
            depth: self.depth,
            records: self
                .records
                .iter()
                .map(|rec| RetiredRecord {
                    valid_until: rec.valid_until,
                    pairs: rec
                        .pairs
                        .iter()
                        .map(|(&pair, list)| {
                            (
                                pair,
                                list.iter()
                                    .map(|e| RetiredEntry {
                                        headers: dst.import(src, e.headers, memo),
                                        tag: e.tag,
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                })
                .collect(),
            evictions: self.evictions,
        }
    }
}

impl<B: HeaderSetBackend> PathTable<B> {
    /// Re-check a report that failed against the current table against the
    /// retired ring. `true` means the report was sampled at an older epoch
    /// and a recently-retired control-plane-sanctioned path explains it —
    /// the failure is an update race, not a data-plane fault.
    ///
    /// Reports stamped with the current (or a future) epoch never get grace:
    /// they were sampled against the live table and must answer to it.
    pub fn grace_check(&self, report: &TagReport, hs: &B) -> bool {
        if report.epoch >= self.epoch() {
            return false;
        }
        obs::counter!("veridp_grace_checks_total").inc();
        let hit = self.retired.admits(report, hs);
        if hit {
            obs::counter!("veridp_grace_hits_total").inc();
        }
        hit
    }

    /// Algorithm 3 with epoch grace: plain [`verify`](PathTable::verify),
    /// then — only for failing reports sampled at an older epoch — a
    /// [`grace_check`](PathTable::grace_check). Returns the final outcome and
    /// whether grace converted a failure into the Pass.
    ///
    /// When no update is in flight (the report's epoch equals the table's),
    /// this is bit-identical to plain verification: the grace arm is never
    /// taken.
    pub fn verify_graced(&self, report: &TagReport, hs: &B) -> (VerifyOutcome, bool) {
        let outcome = self.verify(report, hs);
        if !outcome.is_pass() && self.grace_check(report, hs) {
            (VerifyOutcome::Pass, true)
        } else {
            (outcome, false)
        }
    }
}
