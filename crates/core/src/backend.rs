//! Pluggable header-set backends.
//!
//! The path table stores one *header set* per path (§4.1). The seed
//! implementation represented those sets exclusively as BDDs; Delta-net-style
//! systems (Horn et al., NSDI '17) show that for the IP-prefix-dominated rule
//! sets of real networks, a partition of the header space into disjoint
//! *atoms* makes the same set algebra a linear merge of sorted id lists.
//!
//! [`HeaderSetBackend`] abstracts exactly the operations the path-table
//! pipeline needs, so construction (sequential and sharded-parallel),
//! incremental update, verification, and localization are generic over the
//! representation. Two implementations exist:
//!
//! * [`HeaderSpace`](crate::HeaderSpace) — the BDD manager (`veridp-bdd`),
//!   the default;
//! * `AtomSpace` (`veridp-atoms`) — the atom-partition backend.
//!
//! # Contract
//!
//! Implementations must be *canonical*: two handles compare equal **iff**
//! they denote the same header set. The BDD backend gets this from
//! hash-consed ROBDDs; the atom backend from interning sorted atom-id
//! vectors against a shared partition. Canonicity is load-bearing — the
//! incremental update compares old and new transfer predicates by handle
//! equality, and the differential tests compare whole tables this way.
//!
//! Handles are only meaningful to the backend instance that created them
//! (or to one derived from it via [`fork_worker`](HeaderSetBackend::fork_worker)
//! and [`import`](HeaderSetBackend::import)); mixing handles across unrelated
//! instances is a logic error.

use veridp_packet::FiveTuple;
use veridp_switch::Match;

/// A header-set representation the path table can be built on.
///
/// The backend owns all set state (arena, partition, caches); sets themselves
/// are small `Copy` handles, mirroring how [`veridp_bdd::Manager`] hands out
/// [`veridp_bdd::Bdd`] indices.
pub trait HeaderSetBackend: std::fmt::Debug + Default + Send + Sync + Sized + 'static {
    /// A handle to one header set. Equality of handles must coincide with
    /// equality of the denoted sets (see the module docs on canonicity).
    type Set: Copy + Eq + std::hash::Hash + std::fmt::Debug + Send + Sync + 'static;

    /// Memo state for [`import`](HeaderSetBackend::import); one memo is
    /// valid for a single `(source, destination)` instance pair.
    type Memo: Default;

    /// Short stable name used for CLI selection and bench output
    /// (`"bdd"`, `"atoms"`).
    const NAME: &'static str;

    /// The set of all headers.
    fn full(&self) -> Self::Set;

    /// The empty set.
    fn empty(&self) -> Self::Set;

    /// The set of headers matched by a rule's fields, ignoring its
    /// `in_port` qualifier (in-ports are handled by the per-port predicate
    /// computation, not the header space). Takes `&mut self` because
    /// constructing a set may extend the backend's store (BDD nodes, atom
    /// refinements) — it builds a set *in* the backend, not a backend from
    /// a match.
    #[allow(clippy::wrong_self_convention)]
    fn from_match(&mut self, m: &Match) -> Self::Set;

    /// Intersection.
    fn and(&mut self, a: Self::Set, b: Self::Set) -> Self::Set;

    /// Union.
    fn or(&mut self, a: Self::Set, b: Self::Set) -> Self::Set;

    /// Difference `a \ b`.
    fn diff(&mut self, a: Self::Set, b: Self::Set) -> Self::Set;

    /// Whether the set is empty. Equivalent to `s == self.empty()` by
    /// canonicity; backends may implement it directly.
    fn is_empty(&self, s: Self::Set) -> bool;

    /// Whether the set is the full space.
    fn is_full(&self, s: Self::Set) -> bool;

    /// Whether `a ⊆ b`.
    fn is_subset(&mut self, a: Self::Set, b: Self::Set) -> bool;

    /// Membership test `h ∈ s` — the `header ≺ p.headers` of Algorithm 3.
    fn contains(&self, s: Self::Set, h: &FiveTuple) -> bool;

    /// A deterministic witness header from a non-empty set (report
    /// generation, repair proposals).
    fn witness(&self, s: Self::Set) -> Option<FiveTuple>;

    /// A pseudo-random witness driven by `pick` (e.g. a seeded RNG asked
    /// one bit at a time); `pick` receives a backend-chosen discriminator
    /// such as a variable index.
    fn random_witness(&self, s: Self::Set, pick: impl FnMut(u32) -> bool) -> Option<FiveTuple>;

    /// Exact number of concrete headers in the set (fits `u128`: the space
    /// has 104 bits). Used for table statistics and differential checks.
    fn sat_count(&self, s: Self::Set) -> u128;

    /// Size of the backend's store — BDD nodes allocated or atoms in the
    /// partition. The bench suite records this as the memory proxy.
    fn size_metric(&self) -> usize;

    /// Hint called once before a full build with every rule match that will
    /// be inserted. Backends that maintain global state keyed on matches
    /// (the atom partition) refine it here in one batch instead of paying
    /// per-insertion rewrites; the BDD backend ignores it. Correctness must
    /// not depend on this being called.
    fn prepare(&mut self, matches: &[Match]) {
        let _ = matches;
    }

    /// A fresh backend instance suitable for a worker thread of the sharded
    /// parallel build. Handles from `self` are *not* valid in the fork;
    /// translate them with [`import`](HeaderSetBackend::import).
    fn fork_worker(&self) -> Self;

    /// Translate a set from another instance of the same backend into this
    /// one, preserving the denoted set and canonicity. `memo` carries shared
    /// work across calls for one `(src, self)` pair.
    fn import(&mut self, src: &Self, s: Self::Set, memo: &mut Self::Memo) -> Self::Set;
}
