//! Multi-threaded tag-report verification.
//!
//! The paper's server verifies ~5×10⁵ reports/s single-threaded and notes
//! that "we expect a higher throughput with multi-threading in the future"
//! (§6.4). Verification is embarrassingly parallel — Algorithm 3 only reads
//! the path table — so this module shards report batches across scoped
//! threads. The speedup is measured by the `fig13` experiment's parallel
//! variant and the `verify_report` bench.
//!
//! The `*_fast` variants run the same sharding through the verification
//! fast path (`crate::fastpath`): the immutable [`TagIndex`] is shared
//! across workers by reference, while every worker owns a **private**
//! [`VerdictCache`] and private hit/miss counters —
//! no shared mutable state on the hot path. Worker caches live inside the
//! [`VerifyFastPath`] and stay warm across batches; counters are folded
//! into the returned [`BatchSummary`] (and, by the server, into
//! [`crate::ServerStats`]) at join time.

use veridp_obs as obs;
use veridp_packet::TagReport;

use crate::backend::HeaderSetBackend;
use crate::fastpath::{FastPathStats, TagIndex, VerdictCache, VerifyFastPath};
use crate::path_table::PathTable;
use crate::verify::VerifyOutcome;

/// One report in [`LATENCY_SAMPLE`] gets a wall-clock measurement in the
/// summary pipelines. The fold loops iterate in chunks of this size and
/// time only each chunk's first report, so the remaining reports run the
/// same instructions as the obs-off build — no per-report branch at all.
const LATENCY_SAMPLE: usize = 128;

/// Verify a batch of reports across `threads` worker threads, preserving
/// input order in the output.
///
/// With `threads <= 1` (or a batch smaller than the thread count) this
/// degrades to the sequential path with no spawning overhead.
pub fn verify_batch<B: HeaderSetBackend>(
    table: &PathTable<B>,
    hs: &B,
    reports: &[TagReport],
    threads: usize,
) -> Vec<VerifyOutcome> {
    if threads <= 1 || reports.len() < threads * 2 {
        return reports.iter().map(|r| table.verify(r, hs)).collect();
    }
    let chunk = reports.len().div_ceil(threads);
    let mut out: Vec<Vec<VerifyOutcome>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = reports
            .chunks(chunk)
            .map(|slice| {
                s.spawn(move || {
                    slice
                        .iter()
                        .map(|r| table.verify(r, hs))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("verifier thread panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Verify a batch and return only the aggregate counts.
///
/// Fast path for throughput measurement (the fig. 13 experiment): each
/// worker folds its shard into a [`BatchSummary`] as it verifies, so no
/// per-report verdict vector is allocated or concatenated.
pub fn verify_batch_summary<B: HeaderSetBackend>(
    table: &PathTable<B>,
    hs: &B,
    reports: &[TagReport],
    threads: usize,
) -> BatchSummary {
    fn fold<B: HeaderSetBackend>(
        table: &PathTable<B>,
        hs: &B,
        slice: &[TagReport],
    ) -> (BatchSummary, obs::LocalHistogram) {
        let mut s = BatchSummary::default();
        let mut lat = obs::LocalHistogram::new();
        let epoch = table.epoch();
        for chunk in slice.chunks(LATENCY_SAMPLE) {
            let mut it = chunk.iter();
            if let Some(r) = it.next() {
                let t0 = obs::ENABLED.then(obs::monotonic_ns);
                s.add(table.verify(r, hs));
                if let Some(t0) = t0 {
                    let now = obs::monotonic_ns();
                    lat.record(now.saturating_sub(t0));
                    crate::server::record_gap_at(r, epoch, now, &mut s.gap_detect);
                }
            }
            for r in it {
                s.add(table.verify(r, hs));
            }
        }
        (s, lat)
    }
    let (mut total, lat) = if threads <= 1 || reports.len() < threads * 2 {
        fold(table, hs, reports)
    } else {
        let chunk = reports.len().div_ceil(threads);
        let mut total = BatchSummary::default();
        let mut lat = obs::LocalHistogram::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = reports
                .chunks(chunk)
                .map(|slice| {
                    s.spawn(move || {
                        let _span = obs::histogram!("veridp_batch_worker_compute_ns").start_span();
                        fold(table, hs, slice)
                    })
                })
                .collect();
            for h in handles {
                let (shard, shard_lat) = h.join().expect("verifier thread panicked");
                total.merge(&shard);
                lat.merge(&shard_lat);
            }
        });
        (total, lat)
    };
    obs::histogram!("veridp_batch_verify_report_ns").merge_local(&lat);
    obs::histogram!("veridp_gap_detect_ns").merge_local(&total.gap_detect);
    if lat.count() > 0 {
        total.latency = Some(lat.snapshot());
    }
    total
}

/// One report through the fast path against a worker-private cache. Mirrors
/// [`VerifyFastPath::verify`] but with the cache and counters supplied by
/// the caller, so batch workers never touch shared mutable state.
fn verify_cached<B: HeaderSetBackend>(
    table: &PathTable<B>,
    hs: &B,
    index: &TagIndex,
    cache: &mut VerdictCache,
    stats: &mut FastPathStats,
    report: &TagReport,
) -> VerifyOutcome {
    let epoch = table.epoch();
    if let Some(v) = cache.lookup(report, epoch) {
        stats.hits += 1;
        return v;
    }
    let v = table.verify_indexed(report, hs, index);
    cache.insert(report, epoch, v);
    stats.misses += 1;
    v
}

/// [`verify_batch`] through the verification fast path: the fast path's
/// index is synced once, shared read-only across workers, and each worker
/// runs its shard against its own private verdict cache. Verdicts are
/// bit-identical to [`verify_batch`]; `fp` accumulates the hit/miss
/// counters.
pub fn verify_batch_fast<B: HeaderSetBackend>(
    table: &PathTable<B>,
    hs: &B,
    fp: &mut VerifyFastPath,
    reports: &[TagReport],
    threads: usize,
) -> Vec<VerifyOutcome> {
    fp.sync(table);
    if threads <= 1 || reports.len() < threads * 2 {
        return reports.iter().map(|r| fp.verify(table, hs, r)).collect();
    }
    let chunk = reports.len().div_ceil(threads);
    let workers = reports.len().div_ceil(chunk);
    let (index, caches) = fp.index_and_workers(workers);
    let mut out: Vec<Vec<VerifyOutcome>> = Vec::with_capacity(workers);
    let mut stats = FastPathStats::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = reports
            .chunks(chunk)
            .zip(caches.iter_mut())
            .map(|(slice, cache)| {
                s.spawn(move || {
                    let mut local = FastPathStats::default();
                    let verdicts: Vec<_> = slice
                        .iter()
                        .map(|r| verify_cached(table, hs, index, cache, &mut local, r))
                        .collect();
                    (verdicts, local)
                })
            })
            .collect();
        for h in handles {
            let (verdicts, local) = h.join().expect("verifier thread panicked");
            out.push(verdicts);
            stats.merge(&local);
        }
    });
    fp.record(&stats);
    out.into_iter().flatten().collect()
}

/// [`verify_batch_summary`] through the verification fast path: per-worker
/// private caches, per-worker counters, one fold at join. The summary's
/// verdict counts are identical to the plain variant's; `cache_hits` /
/// `cache_misses` carry the fast-path counters (also accumulated into
/// `fp`).
pub fn verify_batch_summary_fast<B: HeaderSetBackend>(
    table: &PathTable<B>,
    hs: &B,
    fp: &mut VerifyFastPath,
    reports: &[TagReport],
    threads: usize,
) -> BatchSummary {
    fp.sync(table);
    let total = if threads <= 1 || reports.len() < threads * 2 {
        let (index, caches) = fp.index_and_workers(1);
        run_indexed(table, hs, index, caches, reports, threads)
    } else {
        let chunk = reports.len().div_ceil(threads);
        let workers = reports.len().div_ceil(chunk);
        let (index, caches) = fp.index_and_workers(workers);
        run_indexed(table, hs, index, caches, reports, threads)
    };
    fp.record(&FastPathStats {
        hits: total.cache_hits as u64,
        misses: total.cache_misses as u64,
    });
    total
}

/// One worker's shard through the indexed fast path (private cache, private
/// counters, sampled latency). Shared by the fast-path and snapshot-pinned
/// batch entry points.
fn fold_indexed<B: HeaderSetBackend>(
    table: &PathTable<B>,
    hs: &B,
    index: &TagIndex,
    cache: &mut VerdictCache,
    slice: &[TagReport],
) -> (BatchSummary, obs::LocalHistogram) {
    let mut s = BatchSummary::default();
    let mut stats = FastPathStats::default();
    let mut lat = obs::LocalHistogram::new();
    let epoch = table.epoch();
    for chunk in slice.chunks(LATENCY_SAMPLE) {
        let mut it = chunk.iter();
        if let Some(r) = it.next() {
            let t0 = obs::ENABLED.then(obs::monotonic_ns);
            s.add(verify_cached(table, hs, index, cache, &mut stats, r));
            if let Some(t0) = t0 {
                let now = obs::monotonic_ns();
                lat.record(now.saturating_sub(t0));
                crate::server::record_gap_at(r, epoch, now, &mut s.gap_detect);
            }
        }
        for r in it {
            s.add(verify_cached(table, hs, index, cache, &mut stats, r));
        }
    }
    s.cache_hits = stats.hits as usize;
    s.cache_misses = stats.misses as usize;
    (s, lat)
}

/// The sharded indexed pipeline over caller-supplied worker caches: the
/// common machinery of [`verify_batch_summary_fast`] and
/// [`verify_batch_summary_indexed`]. `caches` must hold one cache per
/// worker the thread split produces.
fn run_indexed<B: HeaderSetBackend>(
    table: &PathTable<B>,
    hs: &B,
    index: &TagIndex,
    caches: &mut [VerdictCache],
    reports: &[TagReport],
    threads: usize,
) -> BatchSummary {
    let (mut total, lat) = if threads <= 1 || reports.len() < threads * 2 {
        fold_indexed(table, hs, index, &mut caches[0], reports)
    } else {
        let chunk = reports.len().div_ceil(threads);
        let mut total = BatchSummary::default();
        let mut lat = obs::LocalHistogram::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = reports
                .chunks(chunk)
                .zip(caches.iter_mut())
                .map(|(slice, cache)| {
                    s.spawn(move || {
                        let _span = obs::histogram!("veridp_batch_worker_compute_ns").start_span();
                        fold_indexed(table, hs, index, cache, slice)
                    })
                })
                .collect();
            for h in handles {
                let (shard, shard_lat) = h.join().expect("verifier thread panicked");
                total.merge(&shard);
                lat.merge(&shard_lat);
            }
        });
        (total, lat)
    };
    obs::histogram!("veridp_batch_verify_report_ns").merge_local(&lat);
    obs::histogram!("veridp_gap_detect_ns").merge_local(&total.gap_detect);
    if lat.count() > 0 {
        total.latency = Some(lat.snapshot());
    }
    total
}

/// [`verify_batch_summary_fast`] against an externally-owned [`TagIndex`]
/// and worker caches, with no [`VerifyFastPath`] in the loop — the shape
/// the snapshot readers (`crate::snapshot`) need: the index belongs to the
/// pinned table version, the caches to the reader handle, and nothing is
/// shared with the writer. `caches` grows on demand and persists across
/// calls (epoch keying invalidates stale verdicts lazily).
///
/// # Panics
/// Panics (inside [`PathTable::verify_indexed`]) if `index` was not built
/// against `table`'s current epoch.
pub fn verify_batch_summary_indexed<B: HeaderSetBackend>(
    table: &PathTable<B>,
    hs: &B,
    index: &TagIndex,
    caches: &mut Vec<VerdictCache>,
    reports: &[TagReport],
    threads: usize,
) -> BatchSummary {
    let workers = if threads <= 1 || reports.len() < threads * 2 {
        1
    } else {
        reports.len().div_ceil(reports.len().div_ceil(threads))
    };
    if caches.len() < workers {
        caches.resize_with(workers, VerdictCache::new);
    }
    run_indexed(table, hs, index, &mut caches[..workers], reports, threads)
}

/// Aggregate verdict counts from a batch, in the same shape as
/// [`crate::ServerStats`].
#[derive(Debug, Clone, Default)]
pub struct BatchSummary {
    pub total: usize,
    pub passed: usize,
    pub tag_mismatch: usize,
    pub no_matching_path: usize,
    /// Verdicts served from worker verdict caches (fast-path batches only;
    /// zero on the plain scan variants).
    pub cache_hits: usize,
    /// Verdicts computed via index probe or scan.
    pub cache_misses: usize,
    /// Sampled per-report verify latency (nanoseconds), folded from the
    /// workers' private histograms at join. `None` when instrumentation is
    /// compiled out (`obs-off`) or the batch went through a non-summary
    /// entry point. Excluded from equality: two runs with identical
    /// verdicts compare equal regardless of timing.
    pub latency: Option<veridp_obs::HistSnapshot>,
    /// End-to-end gap-detection latency (origin stamp → verdict) for
    /// origin-stamped reports, recorded inside the worker folds while the
    /// report is still cache-hot and on the same 1-in-`LATENCY_SAMPLE`
    /// rhythm as `latency` — the batch pipeline keeps its hot loop free of
    /// per-report instrumentation, so this histogram is a sample of the
    /// batch, not a census (the per-report robust/wire ingest paths record
    /// every stamped report). Empty for unstamped batches and under
    /// `obs-off`; excluded from equality like `latency`.
    pub gap_detect: veridp_obs::LocalHistogram,
}

impl PartialEq for BatchSummary {
    fn eq(&self, other: &Self) -> bool {
        (
            self.total,
            self.passed,
            self.tag_mismatch,
            self.no_matching_path,
            self.cache_hits,
            self.cache_misses,
        ) == (
            other.total,
            other.passed,
            other.tag_mismatch,
            other.no_matching_path,
            other.cache_hits,
            other.cache_misses,
        )
    }
}

impl Eq for BatchSummary {}

impl BatchSummary {
    /// Summarize a verdict list.
    pub fn from_outcomes(outcomes: &[VerifyOutcome]) -> Self {
        let mut s = BatchSummary {
            total: outcomes.len(),
            ..Default::default()
        };
        for o in outcomes {
            match o {
                VerifyOutcome::Pass => s.passed += 1,
                VerifyOutcome::TagMismatch => s.tag_mismatch += 1,
                VerifyOutcome::NoMatchingPath => s.no_matching_path += 1,
            }
        }
        s
    }

    /// Count one verdict.
    pub fn add(&mut self, o: VerifyOutcome) {
        self.total += 1;
        match o {
            VerifyOutcome::Pass => self.passed += 1,
            VerifyOutcome::TagMismatch => self.tag_mismatch += 1,
            VerifyOutcome::NoMatchingPath => self.no_matching_path += 1,
        }
    }

    /// Fold another summary (e.g. one worker's shard) into this one. The
    /// counts and the worker gap histograms merge; `latency` snapshots are
    /// not mergeable (the entry points attach one from the still-mergeable
    /// worker histograms before returning), so `self.latency` is left
    /// as-is.
    pub fn merge(&mut self, other: &BatchSummary) {
        self.total += other.total;
        self.passed += other.passed;
        self.tag_mismatch += other.tag_mismatch;
        self.no_matching_path += other.no_matching_path;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.gap_detect.merge(&other.gap_detect);
    }

    /// The verdict counts alone — equal between the plain and fast-path
    /// pipelines, while the cache counters are fast-path-only by design.
    pub fn verdict_counts(&self) -> (usize, usize, usize, usize) {
        (
            self.total,
            self.passed,
            self.tag_mismatch,
            self.no_matching_path,
        )
    }

    /// Failed verifications.
    pub fn failed(&self) -> usize {
        self.tag_mismatch + self.no_matching_path
    }
}
