//! Multi-threaded tag-report verification.
//!
//! The paper's server verifies ~5×10⁵ reports/s single-threaded and notes
//! that "we expect a higher throughput with multi-threading in the future"
//! (§6.4). Verification is embarrassingly parallel — Algorithm 3 only reads
//! the path table — so this module shards report batches across scoped
//! threads. The speedup is measured by the `fig13` experiment's parallel
//! variant and the `verify_report` bench.

use veridp_packet::TagReport;

use crate::backend::HeaderSetBackend;
use crate::path_table::PathTable;
use crate::verify::VerifyOutcome;

/// Verify a batch of reports across `threads` worker threads, preserving
/// input order in the output.
///
/// With `threads <= 1` (or a batch smaller than the thread count) this
/// degrades to the sequential path with no spawning overhead.
pub fn verify_batch<B: HeaderSetBackend>(
    table: &PathTable<B>,
    hs: &B,
    reports: &[TagReport],
    threads: usize,
) -> Vec<VerifyOutcome> {
    if threads <= 1 || reports.len() < threads * 2 {
        return reports.iter().map(|r| table.verify(r, hs)).collect();
    }
    let chunk = reports.len().div_ceil(threads);
    let mut out: Vec<Vec<VerifyOutcome>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = reports
            .chunks(chunk)
            .map(|slice| {
                s.spawn(move || {
                    slice
                        .iter()
                        .map(|r| table.verify(r, hs))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("verifier thread panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Verify a batch and return only the aggregate counts.
///
/// Fast path for throughput measurement (the fig. 13 experiment): each
/// worker folds its shard into a [`BatchSummary`] as it verifies, so no
/// per-report verdict vector is allocated or concatenated.
pub fn verify_batch_summary<B: HeaderSetBackend>(
    table: &PathTable<B>,
    hs: &B,
    reports: &[TagReport],
    threads: usize,
) -> BatchSummary {
    fn fold<B: HeaderSetBackend>(
        table: &PathTable<B>,
        hs: &B,
        slice: &[TagReport],
    ) -> BatchSummary {
        let mut s = BatchSummary::default();
        for r in slice {
            s.add(table.verify(r, hs));
        }
        s
    }
    if threads <= 1 || reports.len() < threads * 2 {
        return fold(table, hs, reports);
    }
    let chunk = reports.len().div_ceil(threads);
    let mut total = BatchSummary::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = reports
            .chunks(chunk)
            .map(|slice| s.spawn(move || fold(table, hs, slice)))
            .collect();
        for h in handles {
            total.merge(&h.join().expect("verifier thread panicked"));
        }
    });
    total
}

/// Aggregate verdict counts from a batch, in the same shape as
/// [`crate::ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    pub total: usize,
    pub passed: usize,
    pub tag_mismatch: usize,
    pub no_matching_path: usize,
}

impl BatchSummary {
    /// Summarize a verdict list.
    pub fn from_outcomes(outcomes: &[VerifyOutcome]) -> Self {
        let mut s = BatchSummary {
            total: outcomes.len(),
            ..Default::default()
        };
        for o in outcomes {
            match o {
                VerifyOutcome::Pass => s.passed += 1,
                VerifyOutcome::TagMismatch => s.tag_mismatch += 1,
                VerifyOutcome::NoMatchingPath => s.no_matching_path += 1,
            }
        }
        s
    }

    /// Count one verdict.
    pub fn add(&mut self, o: VerifyOutcome) {
        self.total += 1;
        match o {
            VerifyOutcome::Pass => self.passed += 1,
            VerifyOutcome::TagMismatch => self.tag_mismatch += 1,
            VerifyOutcome::NoMatchingPath => self.no_matching_path += 1,
        }
    }

    /// Fold another summary (e.g. one worker's shard) into this one.
    pub fn merge(&mut self, other: &BatchSummary) {
        self.total += other.total;
        self.passed += other.passed;
        self.tag_mismatch += other.tag_mismatch;
        self.no_matching_path += other.no_matching_path;
    }

    /// Failed verifications.
    pub fn failed(&self) -> usize {
        self.tag_mismatch + self.no_matching_path
    }
}
