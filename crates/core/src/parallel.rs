//! Multi-threaded tag-report verification.
//!
//! The paper's server verifies ~5×10⁵ reports/s single-threaded and notes
//! that "we expect a higher throughput with multi-threading in the future"
//! (§6.4). Verification is embarrassingly parallel — Algorithm 3 only reads
//! the path table — so this module shards report batches across scoped
//! threads. The speedup is measured by the `fig13` experiment's parallel
//! variant and the `verify_report` bench.

use veridp_packet::TagReport;

use crate::headerspace::HeaderSpace;
use crate::path_table::PathTable;
use crate::verify::VerifyOutcome;

/// Verify a batch of reports across `threads` worker threads, preserving
/// input order in the output.
///
/// With `threads <= 1` (or a batch smaller than the thread count) this
/// degrades to the sequential path with no spawning overhead.
pub fn verify_batch(
    table: &PathTable,
    hs: &HeaderSpace,
    reports: &[TagReport],
    threads: usize,
) -> Vec<VerifyOutcome> {
    if threads <= 1 || reports.len() < threads * 2 {
        return reports.iter().map(|r| table.verify(r, hs)).collect();
    }
    let chunk = reports.len().div_ceil(threads);
    let mut out: Vec<Vec<VerifyOutcome>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = reports
            .chunks(chunk)
            .map(|slice| s.spawn(move || slice.iter().map(|r| table.verify(r, hs)).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("verifier thread panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Aggregate verdict counts from a batch, in the same shape as
/// [`crate::ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    pub total: usize,
    pub passed: usize,
    pub tag_mismatch: usize,
    pub no_matching_path: usize,
}

impl BatchSummary {
    /// Summarize a verdict list.
    pub fn from_outcomes(outcomes: &[VerifyOutcome]) -> Self {
        let mut s = BatchSummary { total: outcomes.len(), ..Default::default() };
        for o in outcomes {
            match o {
                VerifyOutcome::Pass => s.passed += 1,
                VerifyOutcome::TagMismatch => s.tag_mismatch += 1,
                VerifyOutcome::NoMatchingPath => s.no_matching_path += 1,
            }
        }
        s
    }

    /// Failed verifications.
    pub fn failed(&self) -> usize {
        self.tag_mismatch + self.no_matching_path
    }
}
