//! Automatic flow-table repair (the paper's future-work item 2).
//!
//! Once localization names a faulty switch, the controller knows both what
//! the switch *should* contain (the logical rules) and which header
//! demonstrated the fault. The repair proposal is the minimal FlowMod
//! sequence that reasserts control-plane state for the implicated rules:
//! re-add the logical rule that should have forwarded the witness header
//! (covering lost/modified rules), preceded by a delete of the same rule id
//! (covering externally corrupted ones).

use veridp_packet::{FiveTuple, PortNo, SwitchId};
use veridp_switch::{FlowRule, OfMessage};

use crate::path_table::PathTable;

/// A proposed repair for one switch.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairProposal {
    pub switch: SwitchId,
    /// The logical rule the data plane demonstrably disobeyed.
    pub rule: FlowRule,
    /// Messages that reassert it (delete-then-add, idempotent).
    pub messages: Vec<OfMessage>,
}

/// Propose a repair for `switch` given a witness header that was misrouted
/// there (arriving on local port `in_port`).
///
/// Scans the switch's logical rules in match order and returns the one that
/// should have handled the witness; `None` if the logical table has no
/// opinion (nothing to repair — the fault must be upstream state, e.g. an
/// externally inserted rule, which the delete in a later proposal handles).
pub fn propose(
    table: &PathTable,
    switch: SwitchId,
    in_port: PortNo,
    witness: &FiveTuple,
) -> Option<RepairProposal> {
    let rules = table.rules.get(&switch)?;
    let mut sorted: Vec<&FlowRule> = rules.iter().collect();
    sorted.sort_by_key(|r| (std::cmp::Reverse(r.priority), r.id));
    let rule = *sorted
        .into_iter()
        .find(|r| r.fields.matches(in_port, witness))?;
    Some(RepairProposal {
        switch,
        rule,
        messages: vec![OfMessage::FlowDelete(rule.id), OfMessage::FlowAdd(rule)],
    })
}
