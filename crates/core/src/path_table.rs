//! The path table and its construction (Algorithm 2, §3.4 and §4.1).
//!
//! The table is generic over the header-set representation
//! ([`HeaderSetBackend`]): `PathTable` defaults to the BDD backend
//! ([`HeaderSpace`]), `PathTable<AtomSpace>` runs the identical algorithm on
//! the atom-partition backend. Both produce the same pairs, hop sequences,
//! and tags; the differential test suite asserts this on every supported
//! topology.

use std::collections::HashMap;

use veridp_bloom::BloomTag;
use veridp_packet::{FiveTuple, Hop, PortNo, PortRef, SwitchId, DROP_PORT, MAX_PATH_LENGTH};
use veridp_switch::{FlowRule, Match};
use veridp_topo::Topology;

use crate::backend::HeaderSetBackend;
use crate::grace::{RetiredRing, DEFAULT_GRACE_DEPTH};
use crate::headerspace::HeaderSpace;
use crate::predicates::SwitchPredicates;

/// One path for an `(inport, outport)` pair: the header set admitted on it,
/// the hop sequence, and the Bloom tag a correctly-forwarded packet would
/// carry.
pub struct PathEntry<B: HeaderSetBackend = HeaderSpace> {
    pub headers: B::Set,
    pub hops: Vec<Hop>,
    pub tag: BloomTag,
}

impl<B: HeaderSetBackend> std::fmt::Debug for PathEntry<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathEntry")
            .field("headers", &self.headers)
            .field("hops", &self.hops)
            .field("tag", &self.tag)
            .finish()
    }
}

impl<B: HeaderSetBackend> Clone for PathEntry<B> {
    fn clone(&self) -> Self {
        PathEntry {
            headers: self.headers,
            hops: self.hops.clone(),
            tag: self.tag,
        }
    }
}

impl<B: HeaderSetBackend> PathEntry<B> {
    /// The exit port of the path, or `None` for an entry with no recorded
    /// hops. Construction always records at least one hop, so `None` never
    /// occurs for table-built entries — but the accessor stays total instead
    /// of panicking on hand-assembled values.
    pub fn outport(&self) -> Option<PortRef> {
        self.hops.last().map(|last| last.out_ref())
    }
}

/// A header set that reached some switch during construction, with the path
/// it took to get there. Kept so the incremental update (§4.4) can resume
/// traversal at the modified switch instead of rebuilding.
pub struct ReachRecord<B: HeaderSetBackend = HeaderSpace> {
    /// The network entry port of this traversal.
    pub inport: PortRef,
    /// Where the headers arrived: switch and local in-port.
    pub at: PortRef,
    /// The headers that got this far.
    pub headers: B::Set,
    /// Hops completed before arriving (empty at the entry switch).
    pub hops: Vec<Hop>,
    /// Tag accumulated so far.
    pub tag: BloomTag,
}

impl<B: HeaderSetBackend> std::fmt::Debug for ReachRecord<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReachRecord")
            .field("inport", &self.inport)
            .field("at", &self.at)
            .field("headers", &self.headers)
            .field("hops", &self.hops)
            .field("tag", &self.tag)
            .finish()
    }
}

impl<B: HeaderSetBackend> Clone for ReachRecord<B> {
    fn clone(&self) -> Self {
        ReachRecord {
            inport: self.inport,
            at: self.at,
            headers: self.headers,
            hops: self.hops.clone(),
            tag: self.tag,
        }
    }
}

/// Aggregate statistics for Table 2 / Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct PathTableStats {
    /// Number of `(inport, outport)` pairs with at least one path.
    pub num_pairs: usize,
    /// Total number of paths.
    pub num_paths: usize,
    /// Mean path length in hops.
    pub avg_path_len: f64,
    /// Histogram of paths-per-pair: `histogram[k]` = number of pairs with
    /// exactly `k+1` paths.
    pub paths_per_pair: Vec<usize>,
}

/// The path table: for every `(inport, outport)` pair, the list of paths a
/// packet may legitimately take, each with its header set and tag.
pub struct PathTable<B: HeaderSetBackend = HeaderSpace> {
    topo: Topology,
    tag_bits: u32,
    max_hops: usize,
    /// Whether reach records are kept (required for incremental update;
    /// [`PathTable::build_static`] skips them to save memory at scale).
    track_reach: bool,
    /// Update generation: bumped on every incremental rule change. The
    /// verification fast path ([`crate::VerifyFastPath`]) keys its tag index
    /// and verdict cache on this, so stale index entries and cached verdicts
    /// are lazily invalidated the moment the table changes.
    epoch: u64,
    /// Recently-retired path entries, kept so reports sampled before an
    /// incremental update can still be verified against the table state they
    /// actually traversed (epoch-grace verification, [`crate::grace`]).
    pub(crate) retired: RetiredRing<B>,
    /// Per-switch logical rules (the control-plane view `R`).
    pub(crate) rules: HashMap<SwitchId, Vec<FlowRule>>,
    pub(crate) preds: HashMap<SwitchId, SwitchPredicates<B>>,
    pub(crate) entries: HashMap<(PortRef, PortRef), Vec<PathEntry<B>>>,
    pub(crate) reach: HashMap<SwitchId, Vec<ReachRecord<B>>>,
}

impl<B: HeaderSetBackend> std::fmt::Debug for PathTable<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathTable")
            .field("tag_bits", &self.tag_bits)
            .field("max_hops", &self.max_hops)
            .field("track_reach", &self.track_reach)
            .field("pairs", &self.entries.len())
            .finish()
    }
}

impl<B: HeaderSetBackend> PathTable<B> {
    /// Build the table from the topology and per-switch logical rules,
    /// traversing from every host-facing edge port (the network's entry
    /// points). `tag_bits` is the Bloom tag width used for path tags.
    pub fn build(
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<FlowRule>>,
        hs: &mut B,
        tag_bits: u32,
    ) -> Self {
        Self::build_inner(topo, rules, hs, tag_bits, true)
    }

    /// Like [`PathTable::build`], but without reach records: roughly halves
    /// memory on large workloads at the cost of incremental updates
    /// (add/delete/modify will panic; rebuild instead).
    pub fn build_static(
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<FlowRule>>,
        hs: &mut B,
        tag_bits: u32,
    ) -> Self {
        Self::build_inner(topo, rules, hs, tag_bits, false)
    }

    /// Empty table skeleton shared by the sequential and parallel builds:
    /// topology and rules recorded, predicates and entries not yet computed.
    pub(crate) fn new_empty(
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<FlowRule>>,
        tag_bits: u32,
        track_reach: bool,
    ) -> Self {
        PathTable {
            topo: topo.clone(),
            tag_bits,
            max_hops: MAX_PATH_LENGTH as usize,
            track_reach,
            epoch: 0,
            retired: RetiredRing::new(DEFAULT_GRACE_DEPTH),
            rules: rules.clone(),
            preds: HashMap::new(),
            entries: HashMap::new(),
            reach: HashMap::new(),
        }
    }

    /// Batch-announce every rule match to the backend before predicate
    /// computation ([`HeaderSetBackend::prepare`]); the atom backend builds
    /// its whole partition here in one pass.
    pub(crate) fn prepare_backend(rules: &HashMap<SwitchId, Vec<FlowRule>>, hs: &mut B) {
        let matches: Vec<Match> = rules
            .values()
            .flat_map(|v| v.iter().map(|r| r.fields))
            .collect();
        hs.prepare(&matches);
    }

    fn build_inner(
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<FlowRule>>,
        hs: &mut B,
        tag_bits: u32,
        track_reach: bool,
    ) -> Self {
        let mut table = Self::new_empty(topo, rules, tag_bits, track_reach);
        Self::prepare_backend(rules, hs);
        for info in topo.switches() {
            let ports: Vec<PortNo> = (1..=info.num_ports).map(PortNo).collect();
            let list = rules.get(&info.id).map_or(&[][..], |v| v.as_slice());
            table.preds.insert(
                info.id,
                SwitchPredicates::from_rules(info.id, &ports, list, hs),
            );
        }
        let entry_ports: Vec<PortRef> = topo
            .host_ports()
            .into_iter()
            .filter(|p| topo.is_terminal_port(*p))
            .collect();
        for inport in entry_ports {
            let full = hs.full();
            table.traverse(
                inport,
                inport,
                full,
                Vec::new(),
                BloomTag::empty(tag_bits),
                hs,
            );
        }
        table
    }

    /// Build the table from precomputed transfer predicates (the §4.1
    /// configuration pipeline: forwarding + in/out-bound ACLs composed by
    /// [`crate::config::SwitchConfig::predicates`]).
    ///
    /// Tables built this way carry no per-switch rule lists, so the
    /// rule-granular incremental update is unavailable — rebuild on change
    /// (configuration files change far less often than OpenFlow rules).
    pub fn build_with_predicates(
        topo: &Topology,
        preds: HashMap<SwitchId, SwitchPredicates<B>>,
        hs: &mut B,
        tag_bits: u32,
    ) -> Self {
        let mut table = PathTable {
            topo: topo.clone(),
            tag_bits,
            max_hops: MAX_PATH_LENGTH as usize,
            track_reach: true,
            epoch: 0,
            retired: RetiredRing::new(DEFAULT_GRACE_DEPTH),
            rules: HashMap::new(),
            preds,
            entries: HashMap::new(),
            reach: HashMap::new(),
        };
        let entry_ports: Vec<PortRef> = topo
            .host_ports()
            .into_iter()
            .filter(|p| topo.is_terminal_port(*p))
            .collect();
        for inport in entry_ports {
            let full = hs.full();
            table.traverse(
                inport,
                inport,
                full,
                Vec::new(),
                BloomTag::empty(tag_bits),
                hs,
            );
        }
        table
    }

    /// Tag width used by this table.
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// Whether reach records are kept (i.e. incremental update is available).
    pub fn tracks_reach(&self) -> bool {
        self.track_reach
    }

    /// Current update generation. Every incremental rule change bumps this;
    /// fast-path state built against an older epoch must be refreshed before
    /// use (see [`crate::VerifyFastPath::sync`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mark the table as changed, invalidating all fast-path state derived
    /// from it.
    pub(crate) fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The ring of recently-retired path entries (epoch-grace state).
    pub fn retired_ring(&self) -> &RetiredRing<B> {
        &self.retired
    }

    /// Resize the epoch-grace ring. Depth 0 disables grace: retired entries
    /// are discarded immediately and [`PathTable::grace_check`] never hits.
    pub fn set_grace_depth(&mut self, depth: usize) {
        self.retired.set_depth(depth);
    }

    /// The monitored topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Predicates of one switch.
    pub fn predicates(&self, s: SwitchId) -> Option<&SwitchPredicates<B>> {
        self.preds.get(&s)
    }

    /// Algorithm 2, one step: expand header set `h` arriving at `⟨s,x⟩ = at`,
    /// with path `hops` and tag `tag` accumulated so far.
    pub(crate) fn traverse(
        &mut self,
        inport: PortRef,
        at: PortRef,
        h: B::Set,
        hops: Vec<Hop>,
        tag: BloomTag,
        hs: &mut B,
    ) {
        let mut t = Traversal {
            topo: &self.topo,
            preds: &self.preds,
            tag_bits: self.tag_bits,
            max_hops: self.max_hops,
            track_reach: self.track_reach,
            entries: &mut self.entries,
            reach: &mut self.reach,
        };
        t.traverse(hs, inport, at, h, hops, tag);
    }

    /// Insert (or merge into) a path entry.
    pub(crate) fn insert_entry(
        &mut self,
        inport: PortRef,
        outport: PortRef,
        headers: B::Set,
        hops: Vec<Hop>,
        tag: BloomTag,
        hs: &mut B,
    ) {
        Traversal::insert_into(&mut self.entries, hs, inport, outport, headers, hops, tag)
    }

    /// Paths recorded for a pair.
    pub fn paths(&self, inport: PortRef, outport: PortRef) -> &[PathEntry<B>] {
        self.entries
            .get(&(inport, outport))
            .map_or(&[], |v| v.as_slice())
    }

    /// Iterate over all `(pair, paths)` groups.
    pub fn iter(&self) -> impl Iterator<Item = (&(PortRef, PortRef), &Vec<PathEntry<B>>)> {
        self.entries.iter()
    }

    /// All entries flattened, in a deterministic order.
    pub fn all_entries(&self) -> Vec<(&(PortRef, PortRef), &PathEntry<B>)> {
        let mut keys: Vec<&(PortRef, PortRef)> = self.entries.keys().collect();
        keys.sort();
        keys.into_iter()
            .flat_map(|k| self.entries[k].iter().map(move |e| (k, e)))
            .collect()
    }

    /// The forwarding trace the *control plane* expects for a concrete
    /// header injected at `from` — `GetPath` of Algorithm 4. Walks the
    /// transfer predicates hop by hop until the packet leaves the network,
    /// drops, or the hop budget runs out.
    pub fn trace(&self, from: PortRef, header: &FiveTuple, hs: &B) -> Vec<Hop> {
        let mut hops = Vec::new();
        let mut at = from;
        while hops.len() < self.max_hops {
            let Some(preds) = self.preds.get(&at.switch) else {
                break;
            };
            let mut out = None;
            for (y, p) in preds.outputs(at.port) {
                if hs.contains(p, header) {
                    out = Some(y);
                    break;
                }
            }
            let Some(y) = out else { break };
            let hop = Hop {
                in_port: at.port,
                switch: at.switch,
                out_port: y,
            };
            hops.push(hop);
            let out_ref = PortRef {
                switch: at.switch,
                port: y,
            };
            if y.is_drop() || self.topo.is_terminal_port(out_ref) {
                break;
            }
            if self.topo.is_middlebox_port(out_ref) {
                at = out_ref;
                continue;
            }
            match self.topo.peer(out_ref) {
                Some(next) => at = next,
                None => break,
            }
        }
        hops
    }

    /// Aggregate statistics (Table 2, Fig. 6).
    pub fn stats(&self) -> PathTableStats {
        let num_pairs = self.entries.len();
        let num_paths: usize = self.entries.values().map(Vec::len).sum();
        let total_hops: usize = self.entries.values().flatten().map(|e| e.hops.len()).sum();
        let mut histogram = Vec::new();
        for list in self.entries.values() {
            let k = list.len();
            if histogram.len() < k {
                histogram.resize(k, 0);
            }
            histogram[k - 1] += 1;
        }
        PathTableStats {
            num_pairs,
            num_paths,
            avg_path_len: if num_paths == 0 {
                0.0
            } else {
                total_hops as f64 / num_paths as f64
            },
            paths_per_pair: histogram,
        }
    }

    /// Total number of concrete headers admitted across all paths
    /// (saturating), via [`HeaderSetBackend::sat_count`]. A cheap semantic
    /// fingerprint: two tables over the same topology and rules must agree
    /// on it regardless of backend.
    pub fn total_header_count(&self, hs: &B) -> u128 {
        self.entries
            .values()
            .flatten()
            .fold(0u128, |acc, e| acc.saturating_add(hs.sat_count(e.headers)))
    }

    /// Drop-port reference for a switch (convenience).
    pub fn drop_port(s: SwitchId) -> PortRef {
        PortRef {
            switch: s,
            port: DROP_PORT,
        }
    }

    /// Deep-copy this table into a fresh backend instance, translating every
    /// header-set handle via [`HeaderSetBackend::import`]. The copy is
    /// observationally identical to `self` — same pairs, per-pair path order,
    /// hops, tags, reach records, epoch, and retired ring — but all its
    /// handles belong to `dst`, so it can be read (or incrementally updated)
    /// independently of the original. This is how the snapshot publisher
    /// ([`crate::snapshot`]) seeds a new version buffer.
    pub(crate) fn translated(&self, src: &B, dst: &mut B) -> PathTable<B> {
        let mut memo = B::Memo::default();
        PathTable {
            topo: self.topo.clone(),
            tag_bits: self.tag_bits,
            max_hops: self.max_hops,
            track_reach: self.track_reach,
            epoch: self.epoch,
            retired: self.retired.translated(src, dst, &mut memo),
            rules: self.rules.clone(),
            preds: self
                .preds
                .iter()
                .map(|(&s, p)| (s, p.translated(src, dst, &mut memo)))
                .collect(),
            entries: self
                .entries
                .iter()
                .map(|(&pair, list)| {
                    (
                        pair,
                        list.iter()
                            .map(|e| PathEntry {
                                headers: dst.import(src, e.headers, &mut memo),
                                hops: e.hops.clone(),
                                tag: e.tag,
                            })
                            .collect(),
                    )
                })
                .collect(),
            reach: self
                .reach
                .iter()
                .map(|(&s, list)| {
                    (
                        s,
                        list.iter()
                            .map(|r| ReachRecord {
                                inport: r.inport,
                                at: r.at,
                                headers: dst.import(src, r.headers, &mut memo),
                                hops: r.hops.clone(),
                                tag: r.tag,
                            })
                            .collect(),
                    )
                })
                .collect(),
        }
    }
}

/// Borrowed view of everything Algorithm 2 needs, decoupled from
/// [`PathTable`] so the same traversal drives both the sequential build
/// (borrowing the table's own fields) and the per-shard workers of
/// [`PathTable::build_parallel`] (borrowing worker-local state and a
/// worker-private backend instance).
pub(crate) struct Traversal<'a, B: HeaderSetBackend> {
    pub topo: &'a Topology,
    pub preds: &'a HashMap<SwitchId, SwitchPredicates<B>>,
    pub tag_bits: u32,
    pub max_hops: usize,
    pub track_reach: bool,
    pub entries: &'a mut HashMap<(PortRef, PortRef), Vec<PathEntry<B>>>,
    pub reach: &'a mut HashMap<SwitchId, Vec<ReachRecord<B>>>,
}

impl<B: HeaderSetBackend> Traversal<'_, B> {
    /// Algorithm 2, one step (see [`PathTable::traverse`] for the
    /// semantics). All set algebra goes through the supplied backend `hs`;
    /// handles in `h` and in `self.preds` must belong to it.
    pub(crate) fn traverse(
        &mut self,
        hs: &mut B,
        inport: PortRef,
        at: PortRef,
        h: B::Set,
        hops: Vec<Hop>,
        tag: BloomTag,
    ) {
        if hops.len() >= self.max_hops {
            return; // TTL guard; mirrors the data-plane loop cut
        }
        // Loop removal (§6.1): stop if this port was already visited on the
        // current path.
        if hops.iter().any(|hop| hop.in_ref() == at) {
            return;
        }
        let s = at.switch;
        let x = at.port;
        if self.track_reach {
            self.reach.entry(s).or_default().push(ReachRecord {
                inport,
                at,
                headers: h,
                hops: hops.clone(),
                tag,
            });
        }
        let Some(preds) = self.preds.get(&s) else {
            return;
        };
        let outputs = preds.outputs(x);
        for (y, p_xy) in outputs {
            let h2 = hs.and(h, p_xy);
            if hs.is_empty(h2) {
                continue;
            }
            let hop = Hop {
                in_port: x,
                switch: s,
                out_port: y,
            };
            let mut hops2 = hops.clone();
            hops2.push(hop);
            let tag2 = tag.union(BloomTag::singleton(&hop.encode(), self.tag_bits));
            let out_ref = PortRef { switch: s, port: y };
            if y.is_drop() || self.topo.is_terminal_port(out_ref) {
                Self::insert_into(self.entries, hs, inport, out_ref, h2, hops2, tag2);
            } else if self.topo.is_middlebox_port(out_ref) {
                // Reflecting middlebox: the packet re-enters on the same port.
                self.traverse(hs, inport, out_ref, h2, hops2, tag2);
            } else if let Some(next) = self.topo.peer(out_ref) {
                self.traverse(hs, inport, next, h2, hops2, tag2);
            }
        }
    }

    /// Insert (or merge into) a path entry of `entries`.
    pub(crate) fn insert_into(
        entries: &mut HashMap<(PortRef, PortRef), Vec<PathEntry<B>>>,
        hs: &mut B,
        inport: PortRef,
        outport: PortRef,
        headers: B::Set,
        hops: Vec<Hop>,
        tag: BloomTag,
    ) {
        let list = entries.entry((inport, outport)).or_default();
        if let Some(e) = list.iter_mut().find(|e| e.hops == hops) {
            e.headers = hs.or(e.headers, headers);
        } else {
            list.push(PathEntry { headers, hops, tag });
        }
    }
}
