use std::collections::HashMap;

use veridp_bloom::{BloomTag, HopEncoder};
use veridp_packet::{FiveTuple, Hop, PortNo, PortRef, SwitchId, TagReport, DROP_PORT};
use veridp_switch::{Action, FlowRule, Match, PortRange};
use veridp_topo::gen::{self, ip};

use crate::{HeaderSpace, PathTable, SwitchPredicates, VeriDpServer, VerifyOutcome};

type Rules = HashMap<SwitchId, Vec<FlowRule>>;

fn fwd(id: u64, prio: u16, fields: Match, port: u16) -> FlowRule {
    FlowRule::new(id, prio, fields, Action::Forward(PortNo(port)))
}

/// The 10-rule configuration of Figure 5 (§3.4): SSH via the middlebox, the
/// rest direct, H2's traffic dropped at S3.
fn figure5_rules() -> Rules {
    let mut rules: Rules = HashMap::new();
    rules.insert(
        SwitchId(1),
        vec![
            fwd(1, 32, Match::dst_prefix(ip(10, 0, 1, 1), 32), 1),
            fwd(2, 32, Match::dst_prefix(ip(10, 0, 1, 2), 32), 2),
            // R3: SSH traffic to 10.0.2/24 goes via S2 (towards the MB).
            fwd(
                3,
                40,
                Match::dst_prefix(ip(10, 0, 2, 0), 24).with_dst_port(22),
                3,
            ),
            // R4: everything else towards 10.0.2/24 goes to S3 directly.
            fwd(4, 24, Match::dst_prefix(ip(10, 0, 2, 0), 24), 4),
        ],
    );
    rules.insert(
        SwitchId(2),
        vec![
            // R5: traffic from port 1 (S1) goes to the middlebox.
            fwd(5, 50, Match::ANY.with_in_port(PortNo(1)), 3),
            // R6: traffic back from the middlebox continues towards S3.
            fwd(
                6,
                50,
                Match::dst_prefix(ip(10, 0, 2, 0), 24).with_in_port(PortNo(3)),
                2,
            ),
            // R7: return path towards H1/H2's subnet.
            fwd(
                7,
                24,
                Match::dst_prefix(ip(10, 0, 1, 0), 24).with_in_port(PortNo(2)),
                1,
            ),
        ],
    );
    rules.insert(
        SwitchId(3),
        vec![
            // R8: drop all traffic from H2.
            FlowRule::new(8, 60, Match::src_prefix(ip(10, 0, 1, 2), 32), Action::Drop),
            fwd(9, 24, Match::dst_prefix(ip(10, 0, 2, 0), 24), 2),
            fwd(10, 24, Match::dst_prefix(ip(10, 0, 1, 0), 24), 3),
        ],
    );
    rules
}

fn figure5_table(hs: &mut HeaderSpace) -> PathTable {
    PathTable::build(&gen::figure5(), &figure5_rules(), hs, 16)
}

fn tag_of(hops: &[(u16, u32, u16)]) -> BloomTag {
    let mut t = BloomTag::default_width();
    for &(x, s, y) in hops {
        t.insert(&HopEncoder::encode(x, s, y));
    }
    t
}

// ------------------------------------------------------------- headerspace

#[test]
fn headerspace_prefix_contains() {
    let mut hs = HeaderSpace::new();
    let set = hs.dst_prefix(ip(10, 0, 2, 0), 24);
    assert!(hs.contains(set, &FiveTuple::tcp(1, ip(10, 0, 2, 200), 1, 1)));
    assert!(!hs.contains(set, &FiveTuple::tcp(1, ip(10, 0, 3, 1), 1, 1)));
}

#[test]
fn headerspace_zero_plen_is_true() {
    let mut hs = HeaderSpace::new();
    assert!(hs.dst_prefix(0, 0).is_true());
    assert!(hs.src_prefix(0xffff_ffff, 0).is_true());
}

#[test]
fn headerspace_port_ranges() {
    let mut hs = HeaderSpace::new();
    let set = hs.dst_port_range(PortRange::new(100, 300));
    for p in [100u16, 101, 200, 299, 300] {
        assert!(hs.contains(set, &FiveTuple::tcp(0, 0, 0, p)), "port {p}");
    }
    for p in [0u16, 99, 301, 65535] {
        assert!(!hs.contains(set, &FiveTuple::tcp(0, 0, 0, p)), "port {p}");
    }
    assert!(hs.dst_port_range(PortRange::ANY).is_true());
    let exact = hs.src_port_range(PortRange::exact(443));
    assert!(hs.contains(exact, &FiveTuple::tcp(0, 0, 443, 0)));
    assert!(!hs.contains(exact, &FiveTuple::tcp(0, 0, 444, 0)));
}

#[test]
fn headerspace_port_range_satcount() {
    let mut hs = HeaderSpace::new();
    let set = hs.dst_port_range(PortRange::new(10, 20));
    // 11 ports × 2^88 remaining header bits.
    assert_eq!(hs.mgr().sat_count(set), 11u128 << 88);
}

#[test]
fn headerspace_proto() {
    let mut hs = HeaderSpace::new();
    let set = hs.proto_is(6);
    assert!(hs.contains(set, &FiveTuple::tcp(0, 0, 0, 0)));
    assert!(!hs.contains(set, &FiveTuple::udp(0, 0, 0, 0)));
}

#[test]
fn headerspace_match_set_composition() {
    let mut hs = HeaderSpace::new();
    let m = Match::dst_prefix(ip(10, 0, 2, 0), 24)
        .with_dst_port(22)
        .with_proto(6);
    let set = hs.match_set(&m);
    assert!(hs.contains(set, &FiveTuple::tcp(9, ip(10, 0, 2, 1), 5, 22)));
    assert!(!hs.contains(set, &FiveTuple::tcp(9, ip(10, 0, 2, 1), 5, 23)));
    assert!(!hs.contains(set, &FiveTuple::udp(9, ip(10, 0, 2, 1), 5, 22)));
    assert!(!hs.contains(set, &FiveTuple::tcp(9, ip(10, 1, 2, 1), 5, 22)));
}

#[test]
fn headerspace_negated_port_needs_no_union() {
    // The motivating example: dst_port != 22 is one BDD operation.
    let mut hs = HeaderSpace::new();
    let eq22 = hs.dst_port_range(PortRange::exact(22));
    let ne22 = hs.mgr().not(eq22);
    assert!(hs.contains(ne22, &FiveTuple::tcp(0, 0, 0, 23)));
    assert!(!hs.contains(ne22, &FiveTuple::tcp(0, 0, 0, 22)));
    assert_eq!(hs.mgr().sat_count(ne22), 65535u128 << 88);
}

#[test]
fn headerspace_witness_in_set() {
    let mut hs = HeaderSpace::new();
    let m = Match::dst_prefix(ip(10, 0, 2, 0), 24).with_dst_port(22);
    let set = hs.match_set(&m);
    let w = hs.witness(set).expect("non-empty");
    assert!(hs.contains(set, &w));
    assert_eq!(w.dst_port, 22);
    assert_eq!(w.dst_ip & 0xffff_ff00, ip(10, 0, 2, 0));
    assert!(hs.witness(veridp_bdd::Bdd::FALSE).is_none());
}

#[test]
fn headerspace_singleton() {
    let mut hs = HeaderSpace::new();
    let h = FiveTuple::tcp(ip(1, 2, 3, 4), ip(5, 6, 7, 8), 1000, 2000);
    let s = hs.header_singleton(&h);
    assert!(hs.contains(s, &h));
    assert_eq!(hs.mgr().sat_count(s), 1);
}

// -------------------------------------------------------------- predicates

#[test]
fn predicates_partition_header_space() {
    // Key invariant: for any in-port, the outputs (incl. ⊥) partition the
    // full header space — every header goes somewhere, nowhere twice.
    let mut hs = HeaderSpace::new();
    let rules = figure5_rules();
    for (sid, list) in &rules {
        let ports: Vec<PortNo> = (1..=4).map(PortNo).collect();
        let p = SwitchPredicates::from_rules(*sid, &ports, list, &mut hs);
        for x in &ports {
            let outs = p.outputs(*x);
            let sets: Vec<_> = outs.iter().map(|(_, b)| *b).collect();
            let union = hs.mgr().or_many(&sets);
            assert!(union.is_true(), "outputs of {sid}:{x} do not cover");
            for i in 0..sets.len() {
                for j in i + 1..sets.len() {
                    assert!(
                        !hs.mgr().intersects(sets[i], sets[j]),
                        "outputs {i} and {j} of {sid}:{x} overlap"
                    );
                }
            }
        }
    }
}

#[test]
fn predicates_priority_shadowing() {
    let mut hs = HeaderSpace::new();
    let rules = vec![
        fwd(
            1,
            40,
            Match::dst_prefix(ip(10, 0, 2, 0), 24).with_dst_port(22),
            3,
        ),
        fwd(2, 24, Match::dst_prefix(ip(10, 0, 2, 0), 24), 4),
    ];
    let p = SwitchPredicates::from_rules(
        SwitchId(1),
        &[PortNo(1), PortNo(3), PortNo(4)],
        &rules,
        &mut hs,
    );
    let ssh = FiveTuple::tcp(0, ip(10, 0, 2, 1), 5, 22);
    let web = FiveTuple::tcp(0, ip(10, 0, 2, 1), 5, 80);
    assert!(hs.contains(p.transfer(PortNo(1), PortNo(3)), &ssh));
    assert!(!hs.contains(p.transfer(PortNo(1), PortNo(4)), &ssh));
    assert!(hs.contains(p.transfer(PortNo(1), PortNo(4)), &web));
    assert!(!p.is_port_dependent());
}

#[test]
fn predicates_miss_and_explicit_drop_both_reach_bottom() {
    let mut hs = HeaderSpace::new();
    let rules = vec![
        FlowRule::new(1, 50, Match::src_prefix(ip(10, 0, 1, 2), 32), Action::Drop),
        fwd(2, 24, Match::dst_prefix(ip(10, 0, 2, 0), 24), 2),
    ];
    let p = SwitchPredicates::from_rules(SwitchId(3), &[PortNo(1), PortNo(2)], &rules, &mut hs);
    let dropped = FiveTuple::tcp(ip(10, 0, 1, 2), ip(10, 0, 2, 1), 5, 80); // explicit
    let missed = FiveTuple::tcp(ip(9, 9, 9, 9), ip(9, 9, 9, 9), 5, 80); // miss
    let bot = p.transfer(PortNo(1), DROP_PORT);
    assert!(hs.contains(bot, &dropped));
    assert!(hs.contains(bot, &missed));
}

#[test]
fn predicates_in_port_dependence() {
    let mut hs = HeaderSpace::new();
    let rules = vec![
        fwd(1, 50, Match::ANY.with_in_port(PortNo(1)), 3),
        fwd(2, 24, Match::dst_prefix(ip(10, 0, 2, 0), 24), 2),
    ];
    let ports: Vec<PortNo> = (1..=3).map(PortNo).collect();
    let p = SwitchPredicates::from_rules(SwitchId(2), &ports, &rules, &mut hs);
    assert!(p.is_port_dependent());
    let h = FiveTuple::tcp(0, ip(10, 0, 2, 1), 5, 80);
    assert!(hs.contains(p.transfer(PortNo(1), PortNo(3)), &h)); // in-port rule wins
    assert!(hs.contains(p.transfer(PortNo(2), PortNo(2)), &h)); // fallback elsewhere
}

#[test]
fn predicates_empty_ruleset_drops_everything() {
    let mut hs = HeaderSpace::new();
    let p = SwitchPredicates::from_rules(SwitchId(9), &[PortNo(1)], &[], &mut hs);
    assert!(p.transfer(PortNo(1), DROP_PORT).is_true());
    assert!(p.transfer(PortNo(1), PortNo(1)).is_false());
}

// -------------------------------------------------------------- path table

#[test]
fn figure5_path_table_matches_paper_table1() {
    let mut hs = HeaderSpace::new();
    let table = figure5_table(&mut hs);

    let h1 = PortRef::new(1, 1);
    let h2_port = PortRef::new(1, 2);
    let h3 = PortRef::new(3, 2);

    // Row 1: SSH from H1 to H3 goes through the middlebox — 4 hops.
    let ssh = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 22);
    let paths = table.paths(h1, h3);
    assert!(!paths.is_empty(), "no (S1,1)->(S3,2) paths");
    let ssh_path = paths
        .iter()
        .find(|p| hs.contains(p.headers, &ssh))
        .expect("ssh path");
    let expect_hops = vec![
        Hop::new(1, 1, 3),
        Hop::new(1, 2, 3),
        Hop::new(3, 2, 2),
        Hop::new(1, 3, 2),
    ];
    assert_eq!(ssh_path.hops, expect_hops, "worked example of §4.2");
    assert_eq!(
        ssh_path.tag,
        tag_of(&[(1, 1, 3), (1, 2, 3), (3, 2, 2), (1, 3, 2)])
    );

    // Row 2: non-SSH from H1 goes direct S1→S3.
    let web = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 80);
    let web_path = paths
        .iter()
        .find(|p| hs.contains(p.headers, &web))
        .expect("web path");
    assert_eq!(web_path.hops, vec![Hop::new(1, 1, 4), Hop::new(3, 3, 2)]);
    assert_eq!(web_path.tag, tag_of(&[(1, 1, 4), (3, 3, 2)]));
    // Header sets are disjoint: SSH not in the direct path.
    assert!(!hs.contains(web_path.headers, &ssh));

    // Row 3: H2's non-SSH traffic is dropped at S3.
    let from_h2 = FiveTuple::tcp(ip(10, 0, 1, 2), ip(10, 0, 2, 1), 999, 80);
    let drop_paths = table.paths(h2_port, PathTable::<HeaderSpace>::drop_port(SwitchId(3)));
    let dp = drop_paths
        .iter()
        .find(|p| hs.contains(p.headers, &from_h2))
        .expect("drop path");
    assert_eq!(
        dp.hops,
        vec![Hop::new(2, 1, 4), Hop::new(3, 3, DROP_PORT.0)]
    );
    assert_eq!(dp.tag, tag_of(&[(2, 1, 4), (3, 3, DROP_PORT.0)]));
}

#[test]
fn path_table_stats_figure5() {
    let mut hs = HeaderSpace::new();
    let table = figure5_table(&mut hs);
    let stats = table.stats();
    assert!(stats.num_pairs >= 3);
    assert_eq!(stats.num_paths, table.all_entries().len());
    assert!(stats.avg_path_len > 1.0);
    assert_eq!(stats.paths_per_pair.iter().sum::<usize>(), stats.num_pairs);
}

#[test]
fn path_table_fat_tree_connectivity() {
    // With shortest-path connectivity rules, every host pair has a path.
    let topo = gen::fat_tree(4);
    let mut ctrl = veridp_controller::Controller::new(topo.clone());
    ctrl.install_intent(&veridp_controller::Intent::Connectivity)
        .unwrap();
    let rules: Rules = ctrl
        .logical_rules()
        .iter()
        .map(|(k, v)| (*k, v.clone()))
        .collect();
    let mut hs = HeaderSpace::new();
    let table = PathTable::build(&topo, &rules, &mut hs, 16);
    let hosts = topo.hosts();
    for a in hosts.iter().take(4) {
        for b in hosts.iter().rev().take(4) {
            if a.name == b.name {
                continue;
            }
            let h = FiveTuple::tcp(a.ip, b.ip, 1, 1);
            let paths = table.paths(a.attached, b.attached);
            assert!(
                paths.iter().any(|p| hs.contains(p.headers, &h)),
                "no path {} -> {}",
                a.name,
                b.name
            );
        }
    }
}

#[test]
fn trace_follows_control_plane() {
    let mut hs = HeaderSpace::new();
    let table = figure5_table(&mut hs);
    let ssh = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 22);
    let hops = table.trace(PortRef::new(1, 1), &ssh, &hs);
    assert_eq!(
        hops,
        vec![
            Hop::new(1, 1, 3),
            Hop::new(1, 2, 3),
            Hop::new(3, 2, 2),
            Hop::new(1, 3, 2)
        ]
    );
    // A header with no matching entry at S1's port 1 still drops somewhere.
    let stray = FiveTuple::tcp(ip(9, 9, 9, 9), ip(9, 9, 9, 9), 1, 1);
    let hops = table.trace(PortRef::new(1, 1), &stray, &hs);
    assert_eq!(hops.last().unwrap().out_port, DROP_PORT);
}

// ------------------------------------------------------------------ verify

#[test]
fn verify_pass_on_correct_tag() {
    let mut hs = HeaderSpace::new();
    let table = figure5_table(&mut hs);
    let ssh = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 22);
    let report = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        ssh,
        tag_of(&[(1, 1, 3), (1, 2, 3), (3, 2, 2), (1, 3, 2)]),
    );
    assert_eq!(table.verify(&report, &hs), VerifyOutcome::Pass);
}

#[test]
fn verify_detects_deviation() {
    // R3 fails: the SSH packet takes the direct path. The paper's example:
    // tag becomes [1‖S1‖4] ⊔ [3‖S3‖2], disagreeing with the SSH path's tag.
    let mut hs = HeaderSpace::new();
    let table = figure5_table(&mut hs);
    let ssh = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 22);
    let report = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        ssh,
        tag_of(&[(1, 1, 4), (3, 3, 2)]),
    );
    assert_eq!(table.verify(&report, &hs), VerifyOutcome::TagMismatch);
}

#[test]
fn verify_detects_wrong_destination() {
    let mut hs = HeaderSpace::new();
    let table = figure5_table(&mut hs);
    // H2's traffic should never reach H3's port (it is dropped at S3).
    let h = FiveTuple::tcp(ip(10, 0, 1, 2), ip(10, 0, 2, 1), 999, 80);
    let report = TagReport::new(
        PortRef::new(1, 2),
        PortRef::new(3, 2),
        h,
        tag_of(&[(2, 1, 4), (3, 3, 2)]),
    );
    assert_eq!(table.verify(&report, &hs), VerifyOutcome::NoMatchingPath);
}

#[test]
fn verify_no_false_positive_for_every_figure5_path() {
    // §6.3: verification has no false positives — a correctly forwarded
    // packet always passes. Exercise every path in the table.
    let mut hs = HeaderSpace::new();
    let table = figure5_table(&mut hs);
    let entries: Vec<(PortRef, PortRef, FiveTuple, BloomTag)> = table
        .all_entries()
        .iter()
        .filter_map(|((ip_, op), e)| hs.witness(e.headers).map(|w| (*ip_, *op, w, e.tag)))
        .collect();
    assert!(!entries.is_empty());
    for (inport, outport, witness, tag) in entries {
        let report = TagReport::new(inport, outport, witness, tag);
        assert_eq!(table.verify(&report, &hs), VerifyOutcome::Pass, "{report}");
    }
}

// ---------------------------------------------------------------- localize

/// Figure 7 rules: correct path S1→S2→S4; S3/S5/S6 provide the detour row.
fn figure7_rules() -> Rules {
    let dst = Match::dst_prefix(ip(10, 0, 2, 0), 24);
    let mut rules: Rules = HashMap::new();
    rules.insert(SwitchId(1), vec![fwd(1, 24, dst, 2)]);
    rules.insert(SwitchId(2), vec![fwd(2, 24, dst, 2)]);
    rules.insert(SwitchId(4), vec![fwd(3, 24, dst, 3)]);
    rules.insert(SwitchId(3), vec![fwd(4, 24, dst, 3)]);
    rules.insert(SwitchId(5), vec![fwd(5, 24, dst, 3)]);
    // S6 has no rule for dst → table-miss drop.
    rules.insert(SwitchId(6), vec![]);
    rules
}

#[test]
fn localize_recovers_figure7_real_path() {
    let mut hs = HeaderSpace::new();
    let table = PathTable::build(&gen::figure7(), &figure7_rules(), &mut hs, 64);
    let h = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 80);

    // S1 faulty: outputs port 4; real path ⟨1,S1,4⟩ ⟨1,S3,3⟩ ⟨1,S6,⊥⟩.
    let real = [(1u16, 1u32, 4u16), (1, 3, 3), (1, 6, DROP_PORT.0)];
    let mut tag = BloomTag::empty(64);
    for &(x, s, y) in &real {
        tag.insert(&HopEncoder::encode(x, s, y));
    }
    let report = TagReport::new(PortRef::new(1, 1), PortRef::drop_of(SwitchId(6)), h, tag);
    assert_ne!(table.verify(&report, &hs), VerifyOutcome::Pass);
    let loc = table.localize(&report, &hs);
    assert_eq!(
        loc.correct_path,
        vec![Hop::new(1, 1, 2), Hop::new(1, 2, 2), Hop::new(1, 4, 3)]
    );
    let expect: Vec<Hop> = real.iter().map(|&(x, s, y)| Hop::new(x, s, y)).collect();
    assert!(
        loc.candidates
            .iter()
            .any(|c| c.hops == expect && c.faulty_switch == SwitchId(1)),
        "real path not recovered: {:?}",
        loc.candidates
    );
}

#[test]
fn localize_mid_path_fault() {
    let mut hs = HeaderSpace::new();
    let table = PathTable::build(&gen::figure7(), &figure7_rules(), &mut hs, 64);
    let h = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 80);

    // S2 faulty: outputs port 3 (to S5); S5 forwards correctly to S4, which
    // delivers. Real path: ⟨1,S1,2⟩ ⟨1,S2,3⟩ ⟨1,S5,3⟩ ⟨2,S4,3⟩.
    let real = [(1u16, 1u32, 2u16), (1, 2, 3), (1, 5, 3), (2, 4, 3)];
    let mut tag = BloomTag::empty(64);
    for &(x, s, y) in &real {
        tag.insert(&HopEncoder::encode(x, s, y));
    }
    let report = TagReport::new(PortRef::new(1, 1), PortRef::new(4, 3), h, tag);
    assert_eq!(table.verify(&report, &hs), VerifyOutcome::TagMismatch);
    let loc = table.localize(&report, &hs);
    let expect: Vec<Hop> = real.iter().map(|&(x, s, y)| Hop::new(x, s, y)).collect();
    assert!(
        loc.candidates
            .iter()
            .any(|c| c.hops == expect && c.faulty_switch == SwitchId(2)),
        "candidates: {:?}",
        loc.candidates
    );
}

// ------------------------------------------------------------- incremental

/// Compare two path tables built over the same header space.
fn assert_tables_equal(a: &PathTable, b: &PathTable) {
    let norm = |t: &PathTable| {
        let mut v: Vec<(PortRef, PortRef, Vec<Hop>, u64, u32)> = t
            .all_entries()
            .into_iter()
            .map(|((i, o), e)| (*i, *o, e.hops.clone(), e.tag.bits(), e.headers.index()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(norm(a), norm(b));
}

#[test]
fn incremental_add_matches_rebuild() {
    let topo = gen::figure5();
    let mut hs = HeaderSpace::new();
    let base = figure5_rules();

    // Start from a table without R3 (the SSH detour), then add it.
    let mut without: Rules = base.clone();
    without
        .get_mut(&SwitchId(1))
        .unwrap()
        .retain(|r| r.id.0 != 3);
    let mut incremental = PathTable::build(&topo, &without, &mut hs, 16);
    let r3 = base[&SwitchId(1)]
        .iter()
        .find(|r| r.id.0 == 3)
        .copied()
        .unwrap();
    incremental.add_rule(SwitchId(1), r3, &mut hs);

    let rebuilt = PathTable::build(&topo, &base, &mut hs, 16);
    assert_tables_equal(&incremental, &rebuilt);
}

#[test]
fn incremental_delete_matches_rebuild() {
    let topo = gen::figure5();
    let mut hs = HeaderSpace::new();
    let base = figure5_rules();
    let mut incremental = PathTable::build(&topo, &base, &mut hs, 16);
    incremental.delete_rule(SwitchId(1), veridp_switch::RuleId(3), &mut hs);

    let mut without: Rules = base.clone();
    without
        .get_mut(&SwitchId(1))
        .unwrap()
        .retain(|r| r.id.0 != 3);
    let rebuilt = PathTable::build(&topo, &without, &mut hs, 16);
    assert_tables_equal(&incremental, &rebuilt);
}

#[test]
fn incremental_modify_matches_rebuild() {
    let topo = gen::figure5();
    let mut hs = HeaderSpace::new();
    let base = figure5_rules();
    let mut incremental = PathTable::build(&topo, &base, &mut hs, 16);
    // Redirect R4 to port 3 (everything via S2).
    incremental.modify_rule(
        SwitchId(1),
        veridp_switch::RuleId(4),
        Action::Forward(PortNo(3)),
        &mut hs,
    );

    let mut modified: Rules = base.clone();
    for r in modified.get_mut(&SwitchId(1)).unwrap() {
        if r.id.0 == 4 {
            r.action = Action::Forward(PortNo(3));
        }
    }
    let rebuilt = PathTable::build(&topo, &modified, &mut hs, 16);
    assert_tables_equal(&incremental, &rebuilt);
}

#[test]
fn incremental_rule_sequence_matches_rebuild_linear() {
    // Install a batch of prefix rules one-by-one on a linear topology and
    // compare against the monolithic build after each step.
    let topo = gen::linear(3);
    let mut hs = HeaderSpace::new();
    let mut current: Rules = HashMap::new();
    let mut incremental = PathTable::build(&topo, &current, &mut hs, 16);

    let steps = vec![
        (
            SwitchId(1),
            fwd(1, 24, Match::dst_prefix(ip(10, 0, 2, 0), 24), 2),
        ),
        (
            SwitchId(2),
            fwd(2, 24, Match::dst_prefix(ip(10, 0, 2, 0), 24), 2),
        ),
        (
            SwitchId(3),
            fwd(3, 24, Match::dst_prefix(ip(10, 0, 2, 0), 24), 2),
        ),
        (
            SwitchId(3),
            fwd(4, 32, Match::dst_prefix(ip(10, 0, 2, 7), 32), 1),
        ), // punch-hole
        (
            SwitchId(1),
            fwd(5, 16, Match::dst_prefix(ip(10, 0, 0, 0), 16), 2),
        ), // covering
    ];
    for (s, rule) in steps {
        incremental.add_rule(s, rule, &mut hs);
        current.entry(s).or_default().push(rule);
        let rebuilt = PathTable::build(&topo, &current, &mut hs, 16);
        assert_tables_equal(&incremental, &rebuilt);
    }
}

// ------------------------------------------------------------------ server

#[test]
fn server_end_to_end_verify_and_stats() {
    let topo = gen::figure5();
    let mut server = VeriDpServer::new(&topo, &figure5_rules(), 16);
    let ssh = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 22);
    let good = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        ssh,
        tag_of(&[(1, 1, 3), (1, 2, 3), (3, 2, 2), (1, 3, 2)]),
    );
    assert!(server.verify(&good).is_pass());

    let bad = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        ssh,
        tag_of(&[(1, 1, 4), (3, 3, 2)]),
    );
    let (outcome, loc) = server.verify_and_localize(&bad);
    assert_eq!(outcome, VerifyOutcome::TagMismatch);
    let loc = loc.unwrap();
    assert_eq!(loc.primary_suspect(), Some(SwitchId(1)));

    let stats = server.stats();
    assert_eq!(stats.reports, 2);
    assert_eq!(stats.passed, 1);
    assert_eq!(stats.failed(), 1);
    assert_eq!(stats.localizations, 1);
    assert_eq!(stats.localized, 1);
    assert!(server.suspects().contains_key(&SwitchId(1)));
}

#[test]
fn server_intercept_keeps_table_synced() {
    let topo = gen::figure5();
    let mut without: Rules = figure5_rules();
    without
        .get_mut(&SwitchId(1))
        .unwrap()
        .retain(|r| r.id.0 != 3);
    let mut server = VeriDpServer::new(&topo, &without, 16);

    let ssh = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 22);
    let via_mb = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        ssh,
        tag_of(&[(1, 1, 3), (1, 2, 3), (3, 2, 2), (1, 3, 2)]),
    );
    // Without R3, SSH takes the direct path; the MB tag must fail.
    assert!(!server.verify(&via_mb).is_pass());

    // Controller installs R3; server intercepts the FlowMod.
    let r3 = fwd(
        3,
        40,
        Match::dst_prefix(ip(10, 0, 2, 0), 24).with_dst_port(22),
        3,
    );
    server.intercept(SwitchId(1), &veridp_switch::OfMessage::FlowAdd(r3));
    assert!(server.verify(&via_mb).is_pass());
}

#[test]
fn repair_proposes_the_disobeyed_rule() {
    let mut hs = HeaderSpace::new();
    let table = figure5_table(&mut hs);
    let ssh = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 22);
    let proposal =
        crate::repair::propose(&table, SwitchId(1), PortNo(1), &ssh).expect("rule found");
    assert_eq!(proposal.rule.id.0, 3, "R3 governs SSH at S1");
    assert_eq!(proposal.messages.len(), 2);
    assert!(crate::repair::propose(&table, SwitchId(6), PortNo(1), &ssh).is_none());
}

// ---------------------------------------------------------------- property

mod property {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Port-range BDDs agree with arithmetic on random probes.
    #[test]
    fn range_bdd_matches_arithmetic() {
        for seed in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (a, b): (u16, u16) = (rng.gen(), rng.gen());
            let (lo, hi) = (a.min(b), a.max(b));
            let mut hs = HeaderSpace::new();
            let set = hs.dst_port_range(PortRange::new(lo, hi));
            for _ in 0..20 {
                let p: u16 = rng.gen();
                let h = FiveTuple::tcp(0, 0, 0, p);
                assert_eq!(hs.contains(set, &h), lo <= p && p <= hi, "seed {seed}");
            }
        }
    }

    /// match_set agrees with Match::matches on random headers
    /// (in_port excluded — it is not part of the header space).
    #[test]
    fn match_set_agrees_with_matcher() {
        for seed in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let dst: u32 = rng.gen();
            let dplen = rng.gen_range(0u8..=32);
            let src: u32 = rng.gen();
            let splen = rng.gen_range(0u8..=32);
            let port: u16 = rng.gen();
            let mut hs = HeaderSpace::new();
            let mut m = Match::dst_prefix(dst, dplen);
            let sm = Match::src_prefix(src, splen);
            m.src_ip = sm.src_ip;
            m.src_plen = sm.src_plen;
            m.dst_port = PortRange::exact(port);
            let set = hs.match_set(&m);
            for _ in 0..20 {
                let (s, d, dp): (u32, u32, u16) = (rng.gen(), rng.gen(), rng.gen());
                let h = FiveTuple::tcp(s, d, 7, dp);
                assert_eq!(
                    hs.contains(set, &h),
                    m.matches(PortNo(1), &h),
                    "seed {seed}"
                );
            }
        }
    }

    /// Predicate outputs always partition the header space, for random
    /// rule sets.
    #[test]
    fn random_rules_partition() {
        for seed in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut hs = HeaderSpace::new();
            let n = rng.gen_range(1..12);
            let rules: Vec<FlowRule> = (0..n)
                .map(|i| {
                    let plen = rng.gen_range(0..=32);
                    let m = Match::dst_prefix(rng.gen(), plen);
                    let action = if rng.gen_bool(0.2) {
                        Action::Drop
                    } else {
                        Action::Forward(PortNo(rng.gen_range(1..4)))
                    };
                    FlowRule::new(i, rng.gen_range(0..100), m, action)
                })
                .collect();
            let ports: Vec<PortNo> = (1..=4).map(PortNo).collect();
            let p = SwitchPredicates::from_rules(SwitchId(1), &ports, &rules, &mut hs);
            let outs = p.outputs(PortNo(1));
            let sets: Vec<_> = outs.iter().map(|(_, b)| *b).collect();
            let union = hs.mgr().or_many(&sets);
            assert!(union.is_true(), "seed {seed}");
            for i in 0..sets.len() {
                for j in i + 1..sets.len() {
                    assert!(!hs.mgr().intersects(sets[i], sets[j]), "seed {seed}");
                }
            }
        }
    }

    /// For random rule sets on a linear topology, trace() lands where
    /// the path table says the witness header should land, and the tag
    /// verification of a faithful walk always passes.
    #[test]
    fn witness_walk_always_verifies() {
        for seed in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = gen::linear(3);
            let mut rules: Rules = HashMap::new();
            for s in 1..=3u32 {
                let n = rng.gen_range(1..6);
                let list: Vec<FlowRule> = (0..n)
                    .map(|i| {
                        let plen = rng.gen_range(8..=32);
                        let base = ip(10, 0, rng.gen_range(0..4), 0);
                        let m = Match::dst_prefix(base, plen);
                        let port = PortNo(rng.gen_range(1..=3));
                        FlowRule::new(s as u64 * 100 + i, plen as u16, m, Action::Forward(port))
                    })
                    .collect();
                rules.insert(SwitchId(s), list);
            }
            let mut hs = HeaderSpace::new();
            let table = PathTable::build(&topo, &rules, &mut hs, 16);
            for ((inport, outport), entries) in table.iter() {
                for e in entries {
                    if let Some(w) = hs.witness(e.headers) {
                        let report = TagReport::new(*inport, *outport, w, e.tag);
                        assert_eq!(
                            table.verify(&report, &hs),
                            VerifyOutcome::Pass,
                            "seed {seed}"
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- parallel

#[test]
fn parallel_verify_matches_sequential() {
    let mut hs = HeaderSpace::new();
    let table = figure5_table(&mut hs);
    let mut reports = Vec::new();
    for ((inport, outport), entries) in table.iter() {
        for e in entries {
            if let Some(w) = hs.witness(e.headers) {
                reports.push(TagReport::new(*inport, *outport, w, e.tag));
            }
        }
    }
    // Add some corrupted reports so both verdict kinds appear.
    for r in reports.clone() {
        let mut bad = r;
        bad.tag = tag_of(&[(9, 9, 9)]);
        reports.push(bad);
    }
    let sequential: Vec<_> = reports.iter().map(|r| table.verify(r, &hs)).collect();
    let summary = crate::parallel::BatchSummary::from_outcomes(&sequential);
    for threads in [1usize, 2, 4, 8] {
        let parallel = crate::parallel::verify_batch(&table, &hs, &reports, threads);
        assert_eq!(parallel, sequential, "threads={threads}");
        // The folding fast path must count exactly what the verdict
        // vector counts, at every thread count.
        let fast = crate::parallel::verify_batch_summary(&table, &hs, &reports, threads);
        assert_eq!(
            fast, summary,
            "summary fast path diverged at threads={threads}"
        );
    }
    assert_eq!(summary.total, reports.len());
    assert!(summary.passed > 0);
    assert!(summary.failed() > 0);
    assert_eq!(summary.passed + summary.failed(), summary.total);
}

// ----------------------------------------------------------------- rewrite

mod rewrite_tests {
    use super::*;
    use crate::rewrite::{self, RwPathTable, RwRule};
    use veridp_switch::FieldSet;

    #[test]
    fn image_moves_sets_between_fields_values() {
        let mut hs = HeaderSpace::new();
        let set = hs.dst_prefix(ip(10, 0, 2, 0), 24);
        let img = rewrite::image_one(&mut hs, set, &FieldSet::dst_ip(ip(192, 168, 1, 5)));
        // Every image header has the rewritten address...
        let w = hs.witness(img).unwrap();
        assert_eq!(w.dst_ip, ip(192, 168, 1, 5));
        // ...and only that address.
        assert!(!hs.contains(img, &FiveTuple::tcp(0, ip(10, 0, 2, 1), 0, 0)));
        assert!(hs.contains(img, &FiveTuple::tcp(0, ip(192, 168, 1, 5), 0, 0)));
    }

    #[test]
    fn image_of_empty_is_empty() {
        let mut hs = HeaderSpace::new();
        let img = rewrite::image_one(&mut hs, veridp_bdd::Bdd::FALSE, &FieldSet::dst_port(80));
        assert!(img.is_false());
    }

    #[test]
    fn preimage_inverts_image_membership() {
        let mut hs = HeaderSpace::new();
        let fs = FieldSet::dst_port(8080);
        // Set of post-rewrite headers: dst_port == 8080 and dst in 10/8.
        let a = hs.dst_prefix(ip(10, 0, 0, 0), 8);
        let b = hs.dst_port_range(veridp_switch::PortRange::exact(8080));
        let post = hs.mgr().and(a, b);
        let pre = rewrite::preimage_one(&mut hs, post, &fs);
        // Any dst_port maps into the set, as long as dst ip constraint holds.
        assert!(hs.contains(pre, &FiveTuple::tcp(1, ip(10, 1, 2, 3), 1, 22)));
        assert!(hs.contains(pre, &FiveTuple::tcp(1, ip(10, 1, 2, 3), 1, 65000)));
        assert!(!hs.contains(pre, &FiveTuple::tcp(1, ip(11, 1, 2, 3), 1, 8080)));
    }

    #[test]
    fn preimage_of_mismatching_constant_is_empty() {
        let mut hs = HeaderSpace::new();
        let fs = FieldSet::dst_port(8080);
        let post = hs.dst_port_range(veridp_switch::PortRange::exact(80));
        let pre = rewrite::preimage_one(&mut hs, post, &fs);
        assert!(
            pre.is_false(),
            "rewriting to 8080 can never land in dst_port==80"
        );
    }

    #[test]
    fn chain_image_composes_in_order() {
        let mut hs = HeaderSpace::new();
        let chain = [FieldSet::dst_port(80), FieldSet::dst_port(8080)];
        let img = rewrite::image(&mut hs, veridp_bdd::Bdd::TRUE, &chain);
        // Later set wins.
        let w = hs.witness(img).unwrap();
        assert_eq!(w.dst_port, 8080);
    }

    /// A 2-switch NAT scenario: S1 rewrites dst_ip from a virtual IP to the
    /// real server address and forwards to S2, which delivers.
    fn nat_setup() -> (veridp_topo::Topology, HashMap<SwitchId, Vec<RwRule>>) {
        let topo = gen::linear(2);
        let vip = ip(203, 0, 113, 10);
        let server_subnet = ip(10, 0, 2, 0);
        let mut rules: HashMap<SwitchId, Vec<RwRule>> = HashMap::new();
        rules.insert(
            SwitchId(1),
            vec![RwRule::rewriting(
                fwd(1, 32, Match::dst_prefix(vip, 32), 2),
                vec![FieldSet::dst_ip(server_subnet | 1)],
            )],
        );
        rules.insert(
            SwitchId(2),
            vec![RwRule::plain(fwd(
                2,
                24,
                Match::dst_prefix(server_subnet, 24),
                2,
            ))],
        );
        (topo, rules)
    }

    #[test]
    fn nat_path_table_tracks_entry_and_exit_sets() {
        let (topo, rules) = nat_setup();
        let mut hs = HeaderSpace::new();
        let table = RwPathTable::build(&topo, &rules, &mut hs, 16);
        let inport = PortRef::new(1, 1);
        let outport = PortRef::new(2, 2);
        let paths = table.paths(inport, outport);
        let vip_hdr = FiveTuple::tcp(ip(1, 2, 3, 4), ip(203, 0, 113, 10), 5, 80);
        let rewritten = FiveTuple::tcp(ip(1, 2, 3, 4), ip(10, 0, 2, 1), 5, 80);
        let p = paths
            .iter()
            .find(|p| hs.contains(p.entry_headers, &vip_hdr))
            .expect("VIP traffic admitted");
        // Exit set holds the rewritten header, not the VIP.
        assert!(hs.contains(p.exit_headers, &rewritten));
        assert!(!hs.contains(p.exit_headers, &vip_hdr));
        assert_eq!(p.chain, vec![FieldSet::dst_ip(ip(10, 0, 2, 1))]);
        assert_eq!(p.hops, vec![Hop::new(1, 1, 2), Hop::new(1, 2, 2)]);
    }

    #[test]
    fn nat_trace_applies_rewrites() {
        let (topo, rules) = nat_setup();
        let mut hs = HeaderSpace::new();
        let table = RwPathTable::build(&topo, &rules, &mut hs, 16);
        let vip_hdr = FiveTuple::tcp(ip(1, 2, 3, 4), ip(203, 0, 113, 10), 5, 80);
        let (hops, final_h) = table.trace(PortRef::new(1, 1), &vip_hdr, &hs);
        assert_eq!(hops.len(), 2);
        assert_eq!(final_h.dst_ip, ip(10, 0, 2, 1));
    }

    #[test]
    fn nat_end_to_end_verification_passes() {
        // Drive the real data plane: switch applies the rewrite, the exit
        // report carries the rewritten header, and the rewrite-aware table
        // verifies it — the thing the base system cannot do.
        let (topo, rules) = nat_setup();
        let mut hs = HeaderSpace::new();
        let table = RwPathTable::build(&topo, &rules, &mut hs, 16);

        let mut net = veridp_sim_stub::Net::new(&topo);
        for (sid, list) in &rules {
            for r in list {
                net.install(*sid, r.rule, r.sets.clone());
            }
        }
        let vip_hdr = FiveTuple::tcp(ip(1, 2, 3, 4), ip(203, 0, 113, 10), 5, 80);
        let report = net
            .send(&topo, PortRef::new(1, 1), vip_hdr)
            .expect("report");
        assert_eq!(
            report.header.dst_ip,
            ip(10, 0, 2, 1),
            "exit header is rewritten"
        );
        assert_eq!(table.verify(&report, &hs), VerifyOutcome::Pass);

        // And a tampered rewrite (wrong target) is caught.
        let mut net2 = veridp_sim_stub::Net::new(&topo);
        for (sid, list) in &rules {
            for r in list {
                let sets = if r.rule.id.0 == 1 {
                    vec![FieldSet::dst_ip(ip(10, 0, 2, 99))] // attacker redirect
                } else {
                    r.sets.clone()
                };
                net2.install(*sid, r.rule, sets);
            }
        }
        let bad = net2
            .send(&topo, PortRef::new(1, 1), vip_hdr)
            .expect("report");
        assert_ne!(table.verify(&bad, &hs), VerifyOutcome::Pass);
    }

    /// Minimal data-plane driver local to this test (the full simulator
    /// lives in veridp-sim, which depends on this crate).
    mod veridp_sim_stub {
        use super::*;
        use veridp_switch::{OfMessage, Switch};

        pub struct Net {
            switches: HashMap<SwitchId, Switch>,
        }

        impl Net {
            pub fn new(topo: &veridp_topo::Topology) -> Self {
                Net {
                    switches: topo.switches().map(|i| (i.id, Switch::new(i.id))).collect(),
                }
            }

            pub fn install(&mut self, s: SwitchId, rule: FlowRule, sets: Vec<FieldSet>) {
                let sw = self.switches.get_mut(&s).unwrap();
                sw.handle(OfMessage::FlowAdd(rule));
                if !sets.is_empty() {
                    sw.set_rewrite(rule.id, sets);
                }
            }

            pub fn send(
                &mut self,
                topo: &veridp_topo::Topology,
                from: PortRef,
                header: FiveTuple,
            ) -> Option<TagReport> {
                let mut pkt = veridp_packet::Packet::new(header);
                let mut here = from;
                for step in 0..64u64 {
                    let sw = self.switches.get_mut(&here.switch)?;
                    let (out, report) = sw.process_packet(&mut pkt, here.port, step, topo);
                    if let Some(r) = report {
                        return Some(r);
                    }
                    let out_ref = PortRef {
                        switch: here.switch,
                        port: out,
                    };
                    if out.is_drop() || topo.is_terminal_port(out_ref) {
                        return None;
                    }
                    here = if topo.is_middlebox_port(out_ref) {
                        out_ref
                    } else {
                        topo.peer(out_ref)?
                    };
                }
                None
            }
        }
    }
}

// ------------------------------------------------------------------ config

mod config_tests {
    use super::*;
    use crate::config::{parse_config, AclEntry, SwitchConfig};

    fn basic_config() -> SwitchConfig {
        SwitchConfig {
            name: "r1".into(),
            num_ports: 3,
            fwd_rules: vec![
                fwd(1, 24, Match::dst_prefix(ip(10, 0, 2, 0), 24), 2),
                fwd(2, 16, Match::dst_prefix(ip(10, 0, 0, 0), 16), 3),
            ],
            acl_in: HashMap::new(),
            acl_out: HashMap::new(),
        }
    }

    #[test]
    fn config_without_acls_matches_plain_predicates() {
        let mut hs = HeaderSpace::new();
        let cfg = basic_config();
        let p = cfg.predicates(SwitchId(1), &mut hs);
        let h24 = FiveTuple::tcp(1, ip(10, 0, 2, 9), 5, 80);
        let h16 = FiveTuple::tcp(1, ip(10, 0, 9, 9), 5, 80);
        let miss = FiveTuple::tcp(1, ip(9, 9, 9, 9), 5, 80);
        assert!(hs.contains(p.transfer(PortNo(1), PortNo(2)), &h24));
        assert!(hs.contains(p.transfer(PortNo(1), PortNo(3)), &h16));
        assert!(hs.contains(p.transfer(PortNo(1), DROP_PORT), &miss));
    }

    #[test]
    fn inbound_acl_filters_before_forwarding() {
        // Drop term 1: ¬P^in_x.
        let mut hs = HeaderSpace::new();
        let mut cfg = basic_config();
        cfg.acl_in.insert(
            PortNo(1),
            vec![
                AclEntry::deny(Match::src_prefix(ip(10, 0, 1, 2), 32)),
                AclEntry::permit(Match::ANY),
            ],
        );
        let p = cfg.predicates(SwitchId(1), &mut hs);
        let denied = FiveTuple::tcp(ip(10, 0, 1, 2), ip(10, 0, 2, 9), 5, 80);
        let allowed = FiveTuple::tcp(ip(10, 0, 1, 3), ip(10, 0, 2, 9), 5, 80);
        assert!(hs.contains(p.transfer(PortNo(1), DROP_PORT), &denied));
        assert!(!hs.contains(p.transfer(PortNo(1), PortNo(2)), &denied));
        assert!(hs.contains(p.transfer(PortNo(1), PortNo(2)), &allowed));
        // The ACL applies per in-port: port 2 is unfiltered.
        assert!(hs.contains(p.transfer(PortNo(2), PortNo(2)), &denied));
    }

    #[test]
    fn outbound_acl_filters_after_forwarding() {
        // Drop term 3: P^in ∧ P^fwd_y ∧ ¬P^out_y.
        let mut hs = HeaderSpace::new();
        let mut cfg = basic_config();
        cfg.acl_out.insert(
            PortNo(2),
            vec![AclEntry::permit(Match::ANY.with_dst_port(443))],
        );
        let p = cfg.predicates(SwitchId(1), &mut hs);
        let https = FiveTuple::tcp(1, ip(10, 0, 2, 9), 5, 443);
        let http = FiveTuple::tcp(1, ip(10, 0, 2, 9), 5, 80);
        assert!(hs.contains(p.transfer(PortNo(1), PortNo(2)), &https));
        assert!(!hs.contains(p.transfer(PortNo(1), PortNo(2)), &http));
        assert!(hs.contains(p.transfer(PortNo(1), DROP_PORT), &http));
        // Port 3 (no out ACL) is untouched.
        let h16 = FiveTuple::tcp(1, ip(10, 0, 9, 9), 5, 80);
        assert!(hs.contains(p.transfer(PortNo(1), PortNo(3)), &h16));
    }

    #[test]
    fn implicit_deny_at_acl_end() {
        let mut hs = HeaderSpace::new();
        let mut cfg = basic_config();
        // Only HTTPS from 10.0.1.0/24 is permitted in; everything else dies.
        cfg.acl_in.insert(
            PortNo(1),
            vec![AclEntry::permit(
                Match::src_prefix(ip(10, 0, 1, 0), 24).with_dst_port(443),
            )],
        );
        let p = cfg.predicates(SwitchId(1), &mut hs);
        let ok = FiveTuple::tcp(ip(10, 0, 1, 7), ip(10, 0, 2, 9), 5, 443);
        let bad = FiveTuple::tcp(ip(10, 0, 1, 7), ip(10, 0, 2, 9), 5, 80);
        assert!(hs.contains(p.transfer(PortNo(1), PortNo(2)), &ok));
        assert!(hs.contains(p.transfer(PortNo(1), DROP_PORT), &bad));
    }

    #[test]
    fn config_predicates_partition() {
        // The three-term drop formula must complete the partition.
        let mut hs = HeaderSpace::new();
        let mut cfg = basic_config();
        cfg.acl_in.insert(
            PortNo(1),
            vec![
                AclEntry::deny(Match::src_prefix(ip(10, 0, 1, 2), 32)),
                AclEntry::permit(Match::ANY),
            ],
        );
        cfg.acl_out.insert(
            PortNo(2),
            vec![AclEntry::permit(Match::ANY.with_dst_port(443))],
        );
        let p = cfg.predicates(SwitchId(1), &mut hs);
        for x in [PortNo(1), PortNo(2), PortNo(3)] {
            let outs = p.outputs(x);
            let sets: Vec<_> = outs.iter().map(|(_, b)| *b).collect();
            let union = hs.mgr().or_many(&sets);
            assert!(union.is_true(), "port {x} outputs do not cover");
            for i in 0..sets.len() {
                for j in i + 1..sets.len() {
                    assert!(!hs.mgr().intersects(sets[i], sets[j]));
                }
            }
        }
    }

    const FIGURE5_CONFIG: &str = r#"
# Figure 5 as a device configuration file.
switch S1 ports 4
fwd 10.0.1.1/32 -> 1
fwd 10.0.1.2/32 -> 2
fwd 10.0.2.0/24 dport 22 -> 3   # SSH via the middlebox
fwd 10.0.2.0/24 -> 4

switch S2 ports 4
fwd 10.0.2.0/24 -> 2
fwd 10.0.1.0/24 -> 1

switch S3 ports 4
fwd 10.0.2.0/24 -> 2
fwd 10.0.1.0/24 -> 3
acl in 1 deny src 10.0.1.2/32   # R8: drop all traffic from H2
acl in 1 permit any
acl in 3 deny src 10.0.1.2/32
acl in 3 permit any
"#;

    #[test]
    fn parse_figure5_config() {
        let cfgs = parse_config(FIGURE5_CONFIG).expect("parses");
        assert_eq!(cfgs.len(), 3);
        assert_eq!(cfgs[0].name, "S1");
        assert_eq!(cfgs[0].fwd_rules.len(), 4);
        // SSH rule has the dport qualifier and higher priority via plen tie:
        // both /24s share plen 24, so file order (rule id) breaks the tie —
        // the SSH rule comes first and wins for port 22.
        let ssh = &cfgs[0].fwd_rules[2];
        assert_eq!(ssh.fields.dst_port, PortRange::exact(22));
        assert_eq!(cfgs[2].acl_in.len(), 2);
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        assert!(parse_config("fwd 10.0.0.0/8 -> 1")
            .unwrap_err()
            .message
            .contains("before switch"));
        assert!(parse_config("switch s ports x").is_err());
        let e = parse_config("switch s ports 2\nfwd 10.0.0.0/40 -> 1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse_config("switch s ports 2\nacl in 1 maybe").is_err());
        assert!(parse_config("switch s ports 2\nbogus 1 2 3").is_err());
    }

    #[test]
    fn config_pipeline_builds_equivalent_path_table() {
        // Build the Figure 5 path table from the *text configuration* and
        // check the paper's worked example still holds.
        let topo = gen::figure5();
        let cfgs = parse_config(FIGURE5_CONFIG).unwrap();
        let mut hs = HeaderSpace::new();
        let preds: HashMap<SwitchId, crate::SwitchPredicates> = cfgs
            .iter()
            .map(|c| {
                let sid = topo.switch_by_name(&c.name).unwrap();
                (sid, c.predicates(sid, &mut hs))
            })
            .collect();
        let table = PathTable::build_with_predicates(&topo, preds, &mut hs, 16);

        // Non-SSH from H1 goes direct S1→S3 (no in_port rules at S2 in this
        // config, so the middlebox leg needs the OpenFlow variant; the
        // config variant still must match destination-based behaviour).
        let web = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 80);
        let paths = table.paths(PortRef::new(1, 1), PortRef::new(3, 2));
        let p = paths
            .iter()
            .find(|p| hs.contains(p.headers, &web))
            .expect("direct path");
        assert_eq!(p.hops, vec![Hop::new(1, 1, 4), Hop::new(3, 3, 2)]);

        // H2's traffic dies at S3's in-bound ACL — the drop path exists and
        // verification accepts only the drop, not a delivery.
        let from_h2 = FiveTuple::tcp(ip(10, 0, 1, 2), ip(10, 0, 2, 1), 999, 80);
        let drops = table.paths(
            PortRef::new(1, 2),
            PathTable::<HeaderSpace>::drop_port(SwitchId(3)),
        );
        assert!(drops.iter().any(|p| hs.contains(p.headers, &from_h2)));
        let leak = TagReport::new(
            PortRef::new(1, 2),
            PortRef::new(3, 2),
            from_h2,
            tag_of(&[(2, 1, 4), (3, 3, 2)]),
        );
        assert_ne!(table.verify(&leak, &hs), VerifyOutcome::Pass);
    }
}

// ----------------------------------------------- rewrite/ruletree property

mod extension_properties {
    use super::*;
    use crate::rewrite;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use veridp_switch::{FieldSet, RwField};

    fn arb_fieldset(rng: &mut StdRng) -> FieldSet {
        match rng.gen_range(0..4) {
            0 => FieldSet::src_ip(rng.gen()),
            1 => FieldSet::dst_ip(rng.gen()),
            2 => FieldSet::src_port(rng.gen()),
            _ => FieldSet::dst_port(rng.gen()),
        }
    }

    fn arb_header(rng: &mut StdRng) -> FiveTuple {
        FiveTuple::tcp(rng.gen(), rng.gen(), rng.gen(), rng.gen())
    }

    /// Adjointness: h ∈ preimage(S) ⟺ apply(h) ∈ S.
    #[test]
    fn preimage_is_adjoint_to_apply() {
        for seed in 0..32u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let fs = arb_fieldset(&mut rng);
            let h = arb_header(&mut rng);
            let dst: u32 = rng.gen();
            let plen = rng.gen_range(0u8..=32);
            let port_lo: u16 = rng.gen();
            let mut hs = HeaderSpace::new();
            // S: a non-trivial set mixing two fields.
            let a = hs.dst_prefix(dst, plen);
            let b = hs.src_port_range(PortRange::new(port_lo.min(40000), 40000u16.max(port_lo)));
            let s = hs.mgr().and(a, b);
            let pre = rewrite::preimage_one(&mut hs, s, &fs);
            let mut applied = h;
            fs.apply(&mut applied);
            assert_eq!(
                hs.contains(pre, &h),
                hs.contains(s, &applied),
                "seed {seed}"
            );
        }
    }

    /// Image soundness: apply(h) ∈ image(S) for every h ∈ S.
    #[test]
    fn image_contains_applied_members() {
        for seed in 0..32u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let fs = arb_fieldset(&mut rng);
            let dst: u32 = rng.gen();
            let plen = rng.gen_range(0u8..=32);
            let mut hs = HeaderSpace::new();
            let s = hs.dst_prefix(dst, plen);
            let img = rewrite::image_one(&mut hs, s, &fs);
            if let Some(h) = hs.witness(s) {
                let mut applied = h;
                fs.apply(&mut applied);
                assert!(hs.contains(img, &applied), "seed {seed}");
            }
        }
    }

    /// Field metadata is consistent with the canonical layout.
    #[test]
    fn rwfield_layout_consistent() {
        for seed in 0..32u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let fs = arb_fieldset(&mut rng);
            let f = fs.field;
            assert!(f.offset() + f.width() <= veridp_packet::HEADER_BITS);
            let expect = match f {
                RwField::SrcIp | RwField::DstIp => 32,
                RwField::SrcPort | RwField::DstPort => 16,
            };
            assert_eq!(f.width(), expect);
        }
    }

    /// RuleTree predicates match SwitchPredicates for prefix-only tables
    /// with priority = prefix length.
    #[test]
    fn ruletree_matches_switch_predicates() {
        use crate::ruletree::{PrefixRule, RuleTree};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(4242);
        for _round in 0..10 {
            let mut hs = HeaderSpace::new();
            let mut tree = RuleTree::new();
            let mut flat: Vec<FlowRule> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for i in 0..rng.gen_range(1..25u64) {
                let plen = *[0u8, 8, 12, 16, 20, 24, 28, 32]
                    .get(rng.gen_range(0..8usize))
                    .unwrap();
                let prefix = veridp_switch::prefix_mask(
                    ip(10, rng.gen_range(0..3), rng.gen_range(0..3), rng.gen()),
                    plen,
                );
                if !seen.insert((prefix, plen)) {
                    continue;
                }
                let out = PortNo(rng.gen_range(1..5));
                tree.add(
                    PrefixRule {
                        id: veridp_switch::RuleId(i),
                        prefix,
                        plen,
                        out,
                    },
                    &mut hs,
                );
                flat.push(FlowRule::new(
                    i,
                    plen as u16,
                    Match::dst_prefix(prefix, plen),
                    Action::Forward(out),
                ));
            }
            let ports: Vec<PortNo> = (1..5).map(PortNo).collect();
            let scan = SwitchPredicates::from_rules(SwitchId(1), &ports, &flat, &mut hs);
            for y in ports.iter().copied().chain([DROP_PORT]) {
                assert_eq!(
                    tree.predicate(y),
                    scan.transfer(PortNo(1), y),
                    "port {y} diverged"
                );
            }
        }
    }
}

#[test]
fn static_table_matches_tracking_table() {
    let mut hs = HeaderSpace::new();
    let topo = gen::figure5();
    let rules = figure5_rules();
    let tracking = PathTable::build(&topo, &rules, &mut hs, 16);
    let static_ = PathTable::build_static(&topo, &rules, &mut hs, 16);
    assert!(tracking.tracks_reach());
    assert!(!static_.tracks_reach());
    let norm = |t: &PathTable| {
        let mut v: Vec<_> = t
            .all_entries()
            .into_iter()
            .map(|((i, o), e)| (*i, *o, e.hops.clone(), e.tag.bits(), e.headers.index()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(norm(&tracking), norm(&static_));
}

#[test]
#[should_panic(expected = "incremental update requires reach records")]
fn static_table_rejects_incremental_update() {
    let mut hs = HeaderSpace::new();
    let mut t = PathTable::build_static(&gen::figure5(), &figure5_rules(), &mut hs, 16);
    t.delete_rule(SwitchId(1), veridp_switch::RuleId(3), &mut hs);
}

#[test]
fn alarm_aggregator_collapses_per_flow_failures() {
    let mut hs = HeaderSpace::new();
    let table = figure5_table(&mut hs);
    let ssh = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 22);
    let bad = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        ssh,
        tag_of(&[(1, 1, 4), (3, 3, 2)]),
    );
    let good = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        ssh,
        tag_of(&[(1, 1, 3), (1, 2, 3), (3, 2, 2), (1, 3, 2)]),
    );

    let mut agg = crate::AlarmAggregator::new();
    assert!(agg.is_empty());
    // Ten distinct sampled failures of the same flow (one per epoch) → one
    // alarm with count 10.
    for epoch in 0..10 {
        let bad = bad.with_epoch(epoch);
        let outcome = table.verify(&bad, &hs);
        let loc = table.localize(&bad, &hs);
        agg.observe(&bad, &outcome, Some(&loc));
    }
    // Passing reports never alarm.
    let outcome = table.verify(&good, &hs);
    agg.observe(&good, &outcome, None);

    assert_eq!(agg.len(), 1);
    let alarms = agg.alarms();
    assert_eq!(alarms[0].count, 10);
    assert_eq!(alarms[0].header, ssh);
    assert_eq!(
        alarms[0].suspects.first().map(|(s, _)| *s),
        Some(SwitchId(1))
    );

    agg.clear();
    assert!(agg.is_empty());
}

#[test]
fn alarm_aggregator_dedups_suspects_and_orders_output() {
    use crate::{InferredPath, LocalizeOutcome};
    let loc = |suspects: &[u32]| LocalizeOutcome {
        correct_path: Vec::new(),
        candidates: suspects
            .iter()
            .map(|&s| InferredPath {
                hops: Vec::new(),
                faulty_switch: SwitchId(s),
                deviation_index: 0,
            })
            .collect(),
    };
    let h1 = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 1000, 80);
    let h2 = FiveTuple::tcp(ip(10, 0, 1, 2), ip(10, 0, 2, 2), 1000, 443);
    let r1 = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        h1,
        tag_of(&[(1, 1, 1)]),
    );
    let r2 = TagReport::new(
        PortRef::new(2, 1),
        PortRef::new(3, 2),
        h2,
        tag_of(&[(2, 2, 2)]),
    );

    let mut agg = crate::AlarmAggregator::new();
    // Flow 1 fails three times (distinct epochs, so none dedup away):
    // switch 5 implicated every time, 7 once. Repeated (switch, verdict)
    // observations must fold into one suspect entry with a count, not
    // duplicate entries.
    agg.observe(
        &r1.with_epoch(1),
        &VerifyOutcome::TagMismatch,
        Some(&loc(&[5])),
    );
    agg.observe(
        &r1.with_epoch(2),
        &VerifyOutcome::TagMismatch,
        Some(&loc(&[5, 7])),
    );
    agg.observe(
        &r1.with_epoch(3),
        &VerifyOutcome::NoMatchingPath,
        Some(&loc(&[5])),
    );
    // Flow 2 fails once.
    agg.observe(&r2, &VerifyOutcome::TagMismatch, Some(&loc(&[9])));

    assert_eq!(agg.len(), 2);
    let alarms = agg.alarms();
    // Most-failures first, suspects by descending candidate count.
    assert_eq!(alarms[0].count, 3);
    assert_eq!(alarms[0].header, h1);
    assert_eq!(alarms[0].suspects, vec![(SwitchId(5), 3), (SwitchId(7), 1)]);
    assert_eq!(alarms[1].count, 1);
    assert_eq!(alarms[1].suspects, vec![(SwitchId(9), 1)]);

    // Pass verdicts never touch an existing alarm.
    agg.observe(&r1, &VerifyOutcome::Pass, None);
    assert_eq!(agg.alarms()[0].count, 3);

    // clear() empties everything, is idempotent, and observation afterwards
    // starts from fresh counts.
    agg.clear();
    assert!(agg.is_empty());
    assert_eq!(agg.len(), 0);
    assert!(agg.alarms().is_empty());
    agg.clear();
    assert!(agg.is_empty());
    agg.observe(&r1, &VerifyOutcome::TagMismatch, None);
    assert_eq!(agg.alarms()[0].count, 1);
    assert!(agg.alarms()[0].suspects.is_empty());
}

#[test]
fn flight_recorder_freezes_on_confirmation() {
    use crate::{InferredPath, LocalizeOutcome};
    let loc = |suspects: &[u32]| LocalizeOutcome {
        correct_path: Vec::new(),
        candidates: suspects
            .iter()
            .map(|&s| InferredPath {
                hops: Vec::new(),
                faulty_switch: SwitchId(s),
                deviation_index: 0,
            })
            .collect(),
    };
    let h = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 1000, 80);
    let r = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        h,
        tag_of(&[(1, 1, 1)]),
    );

    let mut agg = crate::AlarmAggregator::with_confirmation(3, 256);
    agg.set_shard(4);
    assert!(agg.flight_dumps().is_empty());
    for epoch in 1..=3u64 {
        let stamped = r.with_epoch(epoch).with_origin(veridp_obs::monotonic_ns());
        agg.observe(&stamped, &VerifyOutcome::TagMismatch, Some(&loc(&[5])));
    }

    // Third implication confirms (5, pair) and freezes the pair's ring.
    let dumps = agg.flight_dumps();
    assert_eq!(dumps.len(), 1);
    let d = &dumps[0];
    assert_eq!(d.pair, (r.inport, r.outport));
    assert_eq!(d.suspect, SwitchId(5));
    assert_eq!(d.count, 3);
    let json = d.to_json();
    assert!(json.contains("\"suspect_switch\":5"), "json: {json}");
    assert!(
        json.contains("\"pair\":{\"in\":\"1:1\",\"out\":\"3:2\"}"),
        "json: {json}"
    );
    if veridp_obs::ENABLED {
        assert_eq!(d.events.len(), 3);
        assert!(d.events.iter().all(|e| e.shard == 4));
        assert!(d.events.iter().all(|e| e.verdict == "tag_mismatch"));
        assert!(d.events.iter().all(|e| e.latency_ns > 0));
        assert!(d.events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(json.contains("\"verdict\":\"tag_mismatch\""));
    }

    // Dumps survive a shard merge, and clear() drops them.
    let mut root = crate::AlarmAggregator::new();
    root.absorb(agg);
    assert_eq!(root.flight_dumps().len(), 1);
    assert_eq!(root.flight_dumps()[0].suspect, SwitchId(5));
    root.clear();
    assert!(root.flight_dumps().is_empty());
}

#[test]
fn server_stats_merge_is_associative() {
    use crate::ServerStats;
    let mk = |seed: u64| ServerStats {
        reports: seed,
        passed: seed / 2,
        tag_mismatch: seed % 7,
        no_matching_path: seed % 5,
        localizations: seed % 3,
        localized: seed % 2,
        cache_hits: seed * 3,
        cache_misses: seed + 1,
        duplicates: seed % 11,
        graced: seed % 13,
        quarantined: seed % 17,
        shed: seed % 19,
        ..ServerStats::default()
    };
    let (a, b, c) = (mk(10), mk(23), mk(47));

    // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): shard grouping can't change totals.
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_eq!(left, right);

    // Commutative, with the default as identity.
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba);
    let mut id = a.clone();
    id.merge(&ServerStats::default());
    assert_eq!(id, a);

    // Derived quantities distribute over the merge.
    assert_eq!(left.failed(), a.failed() + b.failed() + c.failed());
}

// ------------------------------------------------------------- robustness

/// Satellite regression: an identical failing report (same pair, header,
/// tag, epoch) observed twice must not bump the alarm or suspect counts
/// twice — transports duplicate frames, not evidence.
#[test]
fn alarm_aggregator_ignores_duplicate_reports() {
    use crate::{InferredPath, LocalizeOutcome};
    let loc = LocalizeOutcome {
        correct_path: Vec::new(),
        candidates: vec![InferredPath {
            hops: Vec::new(),
            faulty_switch: SwitchId(5),
            deviation_index: 0,
        }],
    };
    let h = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 1000, 80);
    let r = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        h,
        tag_of(&[(1, 1, 1)]),
    );

    let mut agg = crate::AlarmAggregator::new();
    agg.observe(&r, &VerifyOutcome::TagMismatch, Some(&loc));
    agg.observe(&r, &VerifyOutcome::TagMismatch, Some(&loc));
    agg.observe(&r, &VerifyOutcome::TagMismatch, Some(&loc));

    let alarms = agg.alarms();
    assert_eq!(alarms.len(), 1);
    assert_eq!(alarms[0].count, 1, "duplicates must not inflate the count");
    assert_eq!(alarms[0].suspects, vec![(SwitchId(5), 1)]);

    // A genuinely new observation (different epoch) still counts.
    agg.observe(&r.with_epoch(7), &VerifyOutcome::TagMismatch, Some(&loc));
    assert_eq!(agg.alarms()[0].count, 2);
    assert_eq!(agg.alarms()[0].suspects, vec![(SwitchId(5), 2)]);
}

#[test]
fn alarm_confirmation_requires_k_failures() {
    use crate::{InferredPath, LocalizeOutcome};
    let loc = |s: u32| LocalizeOutcome {
        correct_path: Vec::new(),
        candidates: vec![InferredPath {
            hops: Vec::new(),
            faulty_switch: SwitchId(s),
            deviation_index: 0,
        }],
    };
    let h = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 1000, 80);
    let r = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        h,
        tag_of(&[(1, 1, 1)]),
    );

    let mut agg = crate::AlarmAggregator::with_confirmation(3, 256);
    agg.observe(&r.with_epoch(1), &VerifyOutcome::TagMismatch, Some(&loc(5)));
    agg.observe(&r.with_epoch(2), &VerifyOutcome::TagMismatch, Some(&loc(5)));
    assert!(agg.confirmed().is_empty(), "2 of 3 must not confirm");

    agg.observe(&r.with_epoch(3), &VerifyOutcome::TagMismatch, Some(&loc(5)));
    let confirmed = agg.confirmed();
    assert_eq!(confirmed.len(), 1);
    assert_eq!(confirmed[0].suspect, SwitchId(5));
    assert_eq!(confirmed[0].count, 3);
    assert_eq!(agg.confirmed_suspects(), vec![SwitchId(5)]);

    // Post-confirmation observations keep escalating the count.
    agg.observe(&r.with_epoch(4), &VerifyOutcome::TagMismatch, Some(&loc(5)));
    assert_eq!(agg.confirmed()[0].count, 4);

    // A suspect-less failure (e.g. corruption artifact) can never confirm.
    let other = r.with_epoch(5);
    agg.observe(&other, &VerifyOutcome::NoMatchingPath, None);
    assert_eq!(agg.confirmed().len(), 1);
}

#[test]
fn alarm_confirmation_window_slides() {
    use crate::{InferredPath, LocalizeOutcome};
    let loc = |s: u32| LocalizeOutcome {
        correct_path: Vec::new(),
        candidates: vec![InferredPath {
            hops: Vec::new(),
            faulty_switch: SwitchId(s),
            deviation_index: 0,
        }],
    };
    let h = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 1000, 80);
    let ra = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        h,
        tag_of(&[(1, 1, 1)]),
    );
    let rb = TagReport::new(
        PortRef::new(2, 1),
        PortRef::new(3, 2),
        FiveTuple::tcp(ip(10, 0, 1, 2), ip(10, 0, 2, 2), 1000, 80),
        tag_of(&[(2, 2, 2)]),
    );

    // K=2 within the last N=2 failing observations: an intervening failure
    // of another flow ages the first support for A out of the window.
    let mut agg = crate::AlarmAggregator::with_confirmation(2, 2);
    agg.observe(
        &ra.with_epoch(1),
        &VerifyOutcome::TagMismatch,
        Some(&loc(5)),
    );
    agg.observe(
        &rb.with_epoch(1),
        &VerifyOutcome::TagMismatch,
        Some(&loc(9)),
    );
    agg.observe(
        &ra.with_epoch(2),
        &VerifyOutcome::TagMismatch,
        Some(&loc(5)),
    );
    assert!(
        agg.confirmed().is_empty(),
        "support outside the sliding window must not count"
    );

    // Two back-to-back failures confirm.
    agg.observe(
        &ra.with_epoch(3),
        &VerifyOutcome::TagMismatch,
        Some(&loc(5)),
    );
    assert_eq!(agg.confirmed_suspects(), vec![SwitchId(5)]);
}

#[test]
fn grace_ring_passes_pre_update_reports() {
    let topo = gen::figure5();
    let mut hs = HeaderSpace::new();
    let mut table = PathTable::build(&topo, &figure5_rules(), &mut hs, 16);
    let ssh = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 22);
    let detour = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        ssh,
        tag_of(&[(1, 1, 3), (1, 2, 3), (3, 2, 2), (1, 3, 2)]),
    );
    assert_eq!(table.verify(&detour, &hs), VerifyOutcome::Pass);
    assert_eq!(table.epoch(), 0);

    // Delete the SSH detour rule while `detour`'s packet is in flight.
    table.delete_rule(SwitchId(1), veridp_switch::RuleId(3), &mut hs);
    assert_eq!(table.epoch(), 1);
    assert!(!table.retired_ring().is_empty());

    // The pre-update report now fails plain verification...
    assert_ne!(table.verify(&detour, &hs), VerifyOutcome::Pass);
    // ...but grace recognizes the retired path (report epoch 0 < table 1).
    let (outcome, graced) = table.verify_graced(&detour, &hs);
    assert_eq!(outcome, VerifyOutcome::Pass);
    assert!(graced);

    // The same trajectory stamped with the current epoch gets no grace: it
    // was sampled against the live table and must answer to it.
    let (outcome, graced) = table.verify_graced(&detour.with_epoch(1), &hs);
    assert_ne!(outcome, VerifyOutcome::Pass);
    assert!(!graced);

    // Depth 0 drops all retired state and disables grace.
    table.set_grace_depth(0);
    let (outcome, graced) = table.verify_graced(&detour, &hs);
    assert_ne!(outcome, VerifyOutcome::Pass);
    assert!(!graced);
}

#[test]
fn retired_ring_bounded_by_depth() {
    let topo = gen::figure5();
    let mut hs = HeaderSpace::new();
    let base = figure5_rules();
    let mut table = PathTable::build(&topo, &base, &mut hs, 16);
    let r3 = base[&SwitchId(1)]
        .iter()
        .find(|r| r.id.0 == 3)
        .copied()
        .unwrap();

    // Each delete/re-add cycle shrinks some hop, producing ring records;
    // the ring must stay bounded at its depth and count evictions.
    for _ in 0..10 {
        table.delete_rule(SwitchId(1), veridp_switch::RuleId(3), &mut hs);
        table.add_rule(SwitchId(1), r3, &mut hs);
    }
    let ring = table.retired_ring();
    assert!(ring.len() <= ring.depth());
    assert_eq!(ring.len(), ring.depth());
    assert!(ring.evictions() > 0);
}

#[test]
fn recent_filter_exact_and_bounded() {
    let r = |n: u64| {
        TagReport::new(
            PortRef::new(1, 1),
            PortRef::new(2, 2),
            FiveTuple::tcp(0, 0, 0, 80),
            BloomTag::default_width(),
        )
        .with_epoch(n)
    };
    let mut f = crate::RecentFilter::new(2);
    assert!(f.insert(&r(1)));
    assert!(!f.insert(&r(1)), "exact duplicate is caught");
    assert!(f.insert(&r(2)));
    assert!(f.insert(&r(3))); // evicts r(1)
    assert!(f.insert(&r(1)), "evicted entries read as fresh again");
    assert_eq!(f.len(), 2);

    // Zero capacity disables dedup entirely.
    let mut off = crate::RecentFilter::new(0);
    assert!(off.insert(&r(1)));
    assert!(off.insert(&r(1)));
}

#[test]
fn robust_ingest_dispositions_and_settle() {
    use crate::{Disposition, RobustConfig};
    let topo = gen::figure5();
    let rules = figure5_rules();
    let mut server = VeriDpServer::new(&topo, &rules, 16);
    server.set_robust(Some(RobustConfig::default()));

    let ssh = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 22);
    let detour_tag = tag_of(&[(1, 1, 3), (1, 2, 3), (3, 2, 2), (1, 3, 2)]);
    let good = TagReport::new(PortRef::new(1, 1), PortRef::new(3, 2), ssh, detour_tag);

    assert_eq!(server.ingest_robust(&good), Disposition::Passed);
    assert_eq!(server.ingest_robust(&good), Disposition::Duplicate);
    assert_eq!(server.stats().duplicates, 1);
    assert_eq!(server.stats().reports, 1);

    // Delete the SSH detour: the table moves to epoch 1.
    server.intercept(
        SwitchId(1),
        &veridp_switch::OfMessage::FlowDelete(veridp_switch::RuleId(3)),
    );
    assert_eq!(server.table().epoch(), 1);

    // An in-flight pre-update report of another SSH flow: graced.
    let ssh2 = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 1000, 22);
    let late = TagReport::new(PortRef::new(1, 1), PortRef::new(3, 2), ssh2, detour_tag);
    assert_eq!(server.ingest_robust(&late), Disposition::Graced);
    assert_eq!(server.stats().graced, 1);

    // Old-epoch garbage neither passes nor graces: held until settle, with
    // its verdict deferred.
    let garbage = TagReport::new(
        PortRef::new(1, 1),
        PortRef::new(3, 2),
        ssh2,
        tag_of(&[(2, 9, 2)]),
    );
    assert_eq!(server.ingest_robust(&garbage), Disposition::Quarantined);
    assert_eq!(server.stats().quarantined, 1);
    assert_eq!(server.stats().reports, 2);
    assert_eq!(server.stats().failed(), 0);
    assert_eq!(server.robust().unwrap().quarantine_len(), 1);

    server.settle();
    assert_eq!(server.robust().unwrap().quarantine_len(), 0);
    assert_eq!(server.stats().reports, 3);
    assert_eq!(server.stats().failed(), 1);
    assert_eq!(server.robust().unwrap().alarms.len(), 1);

    // A current-epoch failure is final immediately and feeds the same alarm.
    let fresh_bad = garbage.with_epoch(1);
    assert_eq!(server.ingest_robust(&fresh_bad), Disposition::Failed);
    assert_eq!(server.stats().failed(), 2);
    assert_eq!(server.robust().unwrap().alarms.len(), 1);
    assert_eq!(server.robust().unwrap().alarms.alarms()[0].count, 2);
}

/// With every report stamped at the table's current epoch and no duplicate
/// frames, robust ingest must produce verdict statistics bit-identical to
/// the plain verify-and-localize path.
#[test]
fn robust_ingest_matches_plain_when_settled() {
    use crate::RobustConfig;
    let topo = gen::figure5();
    let rules = figure5_rules();
    let mut plain = VeriDpServer::new(&topo, &rules, 16);
    let mut robust = VeriDpServer::new(&topo, &rules, 16);
    robust.set_robust(Some(RobustConfig::default()));

    let ssh = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 22);
    let web = FiveTuple::tcp(ip(10, 0, 1, 1), ip(10, 0, 2, 1), 999, 80);
    let reports = [
        TagReport::new(
            PortRef::new(1, 1),
            PortRef::new(3, 2),
            ssh,
            tag_of(&[(1, 1, 3), (1, 2, 3), (3, 2, 2), (1, 3, 2)]),
        ),
        TagReport::new(
            PortRef::new(1, 1),
            PortRef::new(3, 2),
            web,
            tag_of(&[(1, 1, 4), (1, 3, 2)]),
        ),
        TagReport::new(
            PortRef::new(1, 1),
            PortRef::new(3, 2),
            web,
            tag_of(&[(9, 9, 9)]),
        ),
        TagReport::new(
            PortRef::new(1, 1),
            PortRef::new(3, 2),
            ssh,
            tag_of(&[(1, 1, 4), (1, 3, 2)]),
        ),
    ];
    for r in &reports {
        plain.verify_and_localize(r);
        robust.ingest_robust(r);
    }
    robust.settle();
    assert_eq!(
        plain.stats().verdict_counts(),
        robust.stats().verdict_counts()
    );
    assert_eq!(robust.stats().graced, 0);
    assert_eq!(robust.stats().quarantined, 0);
    assert_eq!(plain.suspects(), robust.suspects());
}

/// Pair-sharded [`crate::RobustWorker`]s fed through [`TagReport::shard`]
/// must land exactly where single-threaded `ingest_robust` + `settle` does:
/// same verdict counts, same robust counters, same suspects, same alarms —
/// under dedup, epoch churn, grace, and quarantine all firing.
#[test]
fn sharded_workers_match_single_threaded_robust() {
    use crate::{RobustConfig, RobustWorker};
    let topo = gen::figure5();
    let rules = figure5_rules();
    let mk = || {
        let mut s = VeriDpServer::new(&topo, &rules, 16);
        s.set_fastpath(true);
        s.set_robust(Some(RobustConfig::default()));
        s.set_snapshots(true);
        s
    };
    let mut reference = mk();
    let mut sharded = mk();

    // A battery touching every pair: faithful witnesses, corrupted tags,
    // and duplicated frames.
    let mut stream: Vec<TagReport> = Vec::new();
    for ((i, o), entries) in reference.table().iter() {
        for e in entries {
            if let Some(w) = reference.header_space().witness(e.headers) {
                let good = TagReport::new(*i, *o, w, e.tag);
                stream.push(good);
                stream.push(TagReport::new(*i, *o, w, tag_of(&[(9, 9, 9)])));
                stream.push(good); // exact duplicate frame
            }
        }
    }

    const SHARDS: usize = 3;
    let mut workers: Vec<RobustWorker> = (0..SHARDS)
        .map(|_| sharded.robust_worker().expect("snapshots+robust enabled"))
        .collect();
    let churn_at = stream.len() / 2;
    for (k, r) in stream.iter().enumerate() {
        if k == churn_at {
            // Epoch churn mid-stream: later old-epoch failures hit the
            // grace/quarantine arms on both sides.
            let upd = veridp_switch::OfMessage::FlowDelete(veridp_switch::RuleId(3));
            reference.intercept(SwitchId(1), &upd);
            sharded.intercept(SwitchId(1), &upd);
        }
        reference.ingest_robust(r);
        workers[r.shard(SHARDS)].ingest(r);
    }
    reference.settle();
    for w in workers {
        sharded.absorb(w.harvest());
    }

    assert_eq!(
        reference.stats().verdict_counts(),
        sharded.stats().verdict_counts()
    );
    assert_eq!(reference.stats().duplicates, sharded.stats().duplicates);
    assert_eq!(reference.stats().graced, sharded.stats().graced);
    assert_eq!(reference.stats().quarantined, sharded.stats().quarantined);
    assert_eq!(reference.stats().shed, sharded.stats().shed);
    assert_eq!(reference.suspects(), sharded.suspects());
    let (ra, sa) = (
        &reference.robust().unwrap().alarms,
        &sharded.robust().unwrap().alarms,
    );
    assert_eq!(ra.alarms(), sa.alarms());
    assert_eq!(ra.confirmed(), sa.confirmed());
    assert_eq!(ra.confirmed_suspects(), sa.confirmed_suspects());
}

// ---------------------------------------------------------------- fastpath

mod fastpath_tests {
    use super::*;
    use crate::{
        verify_batch, verify_batch_fast, verify_batch_summary, verify_batch_summary_fast,
        VerifyFastPath,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rules(rng: &mut StdRng, switches: u32, nports: u16) -> Rules {
        let mut rules: Rules = HashMap::new();
        let mut id = 1u64;
        for s in 1..=switches {
            let n = rng.gen_range(2..6);
            let list: Vec<FlowRule> = (0..n)
                .map(|_| {
                    let plen = rng.gen_range(8..=24u8);
                    let base = ip(10, 0, rng.gen_range(0..4), 0);
                    let mut m = Match::dst_prefix(base, plen);
                    if rng.gen_bool(0.2) {
                        m = m.with_dst_port(rng.gen_range(1..1024));
                    }
                    let action = if rng.gen_bool(0.1) {
                        Action::Drop
                    } else {
                        Action::Forward(PortNo(rng.gen_range(1..=nports)))
                    };
                    id += 1;
                    FlowRule::new(id, plen as u16, m, action)
                })
                .collect();
            rules.insert(SwitchId(s), list);
        }
        rules
    }

    /// Faithful witnesses plus perturbations: corrupted tags, shuffled
    /// pairs, and random headers — all three verdict kinds appear.
    fn report_battery(table: &PathTable, hs: &HeaderSpace, rng: &mut StdRng) -> Vec<TagReport> {
        let mut reports = Vec::new();
        let pairs: Vec<(PortRef, PortRef)> = table.iter().map(|(k, _)| *k).collect();
        for ((i, o), entries) in table.iter() {
            for e in entries {
                if let Some(w) = hs.witness(e.headers) {
                    reports.push(TagReport::new(*i, *o, w, e.tag));
                    let mut bad = TagReport::new(*i, *o, w, e.tag);
                    bad.tag = tag_of(&[(9, 9, 9)]);
                    reports.push(bad);
                    if !pairs.is_empty() {
                        let (j, p) = pairs[rng.gen_range(0..pairs.len())];
                        reports.push(TagReport::new(j, p, w, e.tag));
                    }
                }
            }
        }
        for _ in 0..32 {
            let h = FiveTuple::tcp(rng.gen(), rng.gen(), rng.gen(), rng.gen());
            if pairs.is_empty() {
                break;
            }
            let (i, o) = pairs[rng.gen_range(0..pairs.len())];
            reports.push(TagReport::new(
                i,
                o,
                h,
                BloomTag::from_bits(rng.gen::<u64>() & 0xffff, 16),
            ));
        }
        reports
    }

    /// Apply exactly one incremental rule change (always bumps the epoch):
    /// delete or modify when the chosen switch has rules, add otherwise.
    fn random_update(
        rng: &mut StdRng,
        table: &mut PathTable,
        hs: &mut HeaderSpace,
        next_id: &mut u64,
    ) {
        let sids: Vec<SwitchId> = table.topo().switches().map(|s| s.id).collect();
        let s = sids[rng.gen_range(0..sids.len())];
        let nports = table.topo().switch(s).unwrap().num_ports;
        let ids: Vec<_> = table
            .rules
            .get(&s)
            .map(|v| v.iter().map(|r| r.id).collect())
            .unwrap_or_default();
        match rng.gen_range(0..3u8) {
            1 if !ids.is_empty() => {
                table.delete_rule(s, ids[0], hs);
            }
            2 if !ids.is_empty() => {
                let id = ids[rng.gen_range(0..ids.len())];
                table.modify_rule(
                    s,
                    id,
                    Action::Forward(PortNo(rng.gen_range(1..=nports))),
                    hs,
                );
            }
            _ => {
                let plen = rng.gen_range(8..=24u8);
                let base = ip(10, 0, rng.gen_range(0..4), 0);
                let rule = FlowRule::new(
                    *next_id,
                    plen as u16,
                    Match::dst_prefix(base, plen),
                    Action::Forward(PortNo(rng.gen_range(1..=nports))),
                );
                *next_id += 1;
                table.add_rule(s, rule, hs);
            }
        }
    }

    /// Seeded loop: the fast path (index + cache) agrees with the plain scan
    /// on randomized report streams interleaved with rule updates; the
    /// epoch bump means no cached verdict ever survives a change.
    #[test]
    fn fastpath_agrees_with_scan_under_updates() {
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = gen::linear(3);
            let rules = random_rules(&mut rng, 3, 3);
            let mut hs = HeaderSpace::new();
            let mut table = PathTable::build(&topo, &rules, &mut hs, 16);
            let mut fp = VerifyFastPath::new();
            let mut next_id = 10_000u64;
            for round in 0..6 {
                let reports = report_battery(&table, &hs, &mut rng);
                // Verify the stream twice so repeats hit the cache.
                for r in reports.iter().chain(reports.iter()) {
                    assert_eq!(
                        fp.verify(&table, &hs, r),
                        table.verify(r, &hs),
                        "seed {seed} round {round} report {r}"
                    );
                }
                random_update(&mut rng, &mut table, &mut hs, &mut next_id);
            }
            let stats = fp.stats();
            assert!(stats.hits > 0, "seed {seed}: repeats never hit the cache");
            assert!(stats.misses > 0, "seed {seed}: nothing was ever computed");
        }
    }

    /// A pinned report is re-verified after every single update; the cached
    /// verdict from before the update must never be served if the table
    /// changed the answer (and even when it didn't, the verdict must match
    /// the plain scan exactly).
    #[test]
    fn verdict_cache_never_serves_stale_across_epochs() {
        for seed in 100..112u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = gen::linear(3);
            let rules = random_rules(&mut rng, 3, 3);
            let mut hs = HeaderSpace::new();
            let mut table = PathTable::build(&topo, &rules, &mut hs, 16);
            let mut fp = VerifyFastPath::new();
            let pinned = report_battery(&table, &hs, &mut rng);
            let mut next_id = 20_000u64;
            for step in 0..10 {
                for r in pinned.iter().take(16) {
                    // Warm the cache, then change the table, then re-ask.
                    let before = fp.verify(&table, &hs, r);
                    assert_eq!(before, table.verify(r, &hs), "seed {seed} step {step}");
                }
                let epoch_before = table.epoch();
                random_update(&mut rng, &mut table, &mut hs, &mut next_id);
                assert!(table.epoch() > epoch_before, "update must bump the epoch");
                for r in pinned.iter().take(16) {
                    assert_eq!(
                        fp.verify(&table, &hs, r),
                        table.verify(r, &hs),
                        "seed {seed} step {step}: stale verdict after update"
                    );
                }
            }
        }
    }

    /// The sharded fast-path batch pipeline is bit-identical to the plain
    /// batch pipeline at every thread count, and its summary counts the
    /// same verdicts plus coherent cache counters.
    #[test]
    fn batch_fastpath_matches_plain_batches() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut hs = HeaderSpace::new();
        let table = figure5_table(&mut hs);
        // Duplicate every report adjacently so each worker's chunk contains
        // repeats no matter how the batch is sharded.
        let reports: Vec<TagReport> = report_battery(&table, &hs, &mut rng)
            .into_iter()
            .flat_map(|r| [r, r])
            .collect();
        let plain: Vec<_> = reports.iter().map(|r| table.verify(r, &hs)).collect();
        let summary = verify_batch_summary(&table, &hs, &reports, 1);
        for threads in [1usize, 2, 4, 8] {
            let mut fp = VerifyFastPath::new();
            let fast = verify_batch_fast(&table, &hs, &mut fp, &reports, threads);
            assert_eq!(fast, plain, "threads={threads}");
            assert_eq!(
                verify_batch(&table, &hs, &reports, threads),
                plain,
                "plain batch self-check threads={threads}"
            );
            let mut fp2 = VerifyFastPath::new();
            let fast_summary = verify_batch_summary_fast(&table, &hs, &mut fp2, &reports, threads);
            assert_eq!(
                fast_summary.verdict_counts(),
                summary.verdict_counts(),
                "threads={threads}"
            );
            assert_eq!(
                fast_summary.cache_hits + fast_summary.cache_misses,
                reports.len(),
                "every report is either a hit or a miss (threads={threads})"
            );
            assert!(
                fast_summary.cache_hits > 0,
                "repeated stream must produce hits (threads={threads})"
            );
        }
    }

    /// Server-level wiring: a fast-path server and a plain server agree on
    /// every verdict and on all verdict statistics; the fast-path server
    /// additionally reports cache traffic.
    #[test]
    fn server_fastpath_stats_and_verdicts() {
        let mut hs = HeaderSpace::new();
        let table = figure5_table(&mut hs);
        let mut rng = StdRng::seed_from_u64(3);
        let reports = report_battery(&table, &hs, &mut rng);

        let topo = gen::figure5();
        let rules = figure5_rules();
        let mut plain = VeriDpServer::new(&topo, &rules, 16);
        let mut fast = VeriDpServer::new(&topo, &rules, 16);
        fast.set_fastpath(true);
        assert!(fast.fastpath_enabled());

        for r in reports.iter().chain(reports.iter()) {
            assert_eq!(plain.verify(r), fast.verify(r), "{r}");
        }
        assert_eq!(
            plain.stats().verdict_counts(),
            fast.stats().verdict_counts()
        );
        assert_eq!(plain.stats().cache_hits + plain.stats().cache_misses, 0);
        assert_eq!(
            fast.stats().cache_hits + fast.stats().cache_misses,
            fast.stats().reports
        );
        assert!(fast.stats().cache_hits > 0);
        assert!(fast.stats().cache_hit_ratio() > 0.0);

        // Batch ingest folds into the same statistics.
        let before = fast.stats().reports;
        let summary = fast.ingest_batch(&reports, 4);
        assert_eq!(summary.total, reports.len());
        assert_eq!(fast.stats().reports, before + reports.len() as u64);

        // Toggling the fast path off drops cache state but not verdicts.
        fast.set_fastpath(false);
        assert!(!fast.fastpath_enabled());
        for r in reports.iter().take(8) {
            assert_eq!(plain.verify(r), fast.verify(r));
        }
    }
}
