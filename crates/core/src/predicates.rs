//! Transfer predicates `P_{x,y}` (§4.1).
//!
//! A switch with ports `1..=n` is abstracted as predicates `P_{x,y}` over
//! headers: a packet received on port `x` is forwarded to port `y` iff its
//! header satisfies `P_{x,y}`; `y = ⊥` collects everything that is dropped
//! (table miss, or an explicit drop action — the paper's two drop cases).
//!
//! The predicates are computed from the switch's rules with *priority
//! shadowing*: the effective match of a rule is its own match set minus every
//! higher-priority match set, which is exactly the semantics of the flow
//! table's first-match lookup. Rules that carry an `in_port` qualifier make
//! the predicate genuinely depend on `x`; switches without such rules share
//! one predicate vector across all in-ports (the common case, and an
//! important memory optimization at Stanford/Internet2 scale).
//!
//! The computation is generic over the header-set representation
//! ([`HeaderSetBackend`]): the same shadowing scan drives the BDD backend
//! and the atom-partition backend.

use std::collections::HashMap;

use veridp_packet::{PortNo, SwitchId, DROP_PORT};
use veridp_switch::{Action, FlowRule};

use crate::backend::HeaderSetBackend;
use crate::headerspace::HeaderSpace;

/// Transfer predicates of one switch.
pub struct SwitchPredicates<B: HeaderSetBackend = HeaderSpace> {
    pub switch: SwitchId,
    /// Data-plane ports of the switch (excluding `⊥`).
    ports: Vec<PortNo>,
    /// The backend's canonical full/empty handles, kept so lookups can
    /// answer without backend access.
    full: B::Set,
    empty: B::Set,
    /// `uniform[y]` when no rule is in-port-qualified; otherwise
    /// `per_port[x][y]`.
    uniform: Option<HashMap<PortNo, B::Set>>,
    per_port: HashMap<PortNo, HashMap<PortNo, B::Set>>,
}

impl<B: HeaderSetBackend> std::fmt::Debug for SwitchPredicates<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchPredicates")
            .field("switch", &self.switch)
            .field("ports", &self.ports)
            .field("uniform", &self.uniform)
            .field("per_port", &self.per_port)
            .finish()
    }
}

impl<B: HeaderSetBackend> Clone for SwitchPredicates<B> {
    fn clone(&self) -> Self {
        SwitchPredicates {
            switch: self.switch,
            ports: self.ports.clone(),
            full: self.full,
            empty: self.empty,
            uniform: self.uniform.clone(),
            per_port: self.per_port.clone(),
        }
    }
}

impl<B: HeaderSetBackend> SwitchPredicates<B> {
    /// Compute predicates from the switch's rule list (any order; priorities
    /// decide shadowing) for a switch with the given data ports.
    pub fn from_rules(switch: SwitchId, ports: &[PortNo], rules: &[FlowRule], hs: &mut B) -> Self {
        let mut sorted: Vec<&FlowRule> = rules.iter().collect();
        // Match order: priority desc, then id asc (first-installed wins).
        sorted.sort_by_key(|r| (std::cmp::Reverse(r.priority), r.id));

        let any_in_port = sorted.iter().any(|r| r.fields.in_port.is_some());
        if !any_in_port {
            let map = Self::scan(&sorted, None, hs);
            return SwitchPredicates {
                switch,
                ports: ports.to_vec(),
                full: hs.full(),
                empty: hs.empty(),
                uniform: Some(map),
                per_port: HashMap::new(),
            };
        }
        let mut per_port = HashMap::new();
        for &x in ports {
            per_port.insert(x, Self::scan(&sorted, Some(x), hs));
        }
        SwitchPredicates {
            switch,
            ports: ports.to_vec(),
            full: hs.full(),
            empty: hs.empty(),
            uniform: None,
            per_port,
        }
    }

    /// One pass of priority shadowing for a fixed in-port (or port-agnostic
    /// when `in_port` is `None`).
    fn scan(sorted: &[&FlowRule], in_port: Option<PortNo>, hs: &mut B) -> HashMap<PortNo, B::Set> {
        let mut out: HashMap<PortNo, B::Set> = HashMap::new();
        let mut remaining = hs.full(); // headers not yet claimed by any rule
        for r in sorted {
            if hs.is_empty(remaining) {
                break;
            }
            if let (Some(x), Some(rp)) = (in_port, r.fields.in_port) {
                if x != rp {
                    continue;
                }
            }
            if in_port.is_none() && r.fields.in_port.is_some() {
                continue;
            }
            let m = hs.from_match(&r.fields);
            let eff = hs.and(m, remaining);
            if hs.is_empty(eff) {
                continue;
            }
            remaining = hs.diff(remaining, m);
            let y = match r.action {
                Action::Forward(p) => p,
                Action::Drop => DROP_PORT,
            };
            let entry = out.entry(y).or_insert_with(|| hs.empty());
            *entry = hs.or(*entry, eff);
        }
        // Table miss: whatever no rule claimed is dropped.
        if !hs.is_empty(remaining) {
            let entry = out.entry(DROP_PORT).or_insert_with(|| hs.empty());
            *entry = hs.or(*entry, remaining);
        }
        out
    }

    /// Build predicates from an explicit `(in_port, out_port) → headers`
    /// map — used by the configuration pipeline (§4.1), which composes
    /// forwarding and ACL predicates itself. Pairs absent from the map are
    /// `FALSE`.
    pub fn from_transfer_map(
        switch: SwitchId,
        ports: &[PortNo],
        map: HashMap<(PortNo, PortNo), B::Set>,
        hs: &B,
    ) -> Self {
        let mut per_port: HashMap<PortNo, HashMap<PortNo, B::Set>> =
            ports.iter().map(|&x| (x, HashMap::new())).collect();
        for ((x, y), b) in map {
            if hs.is_empty(b) {
                continue;
            }
            per_port.entry(x).or_default().insert(y, b);
        }
        SwitchPredicates {
            switch,
            ports: ports.to_vec(),
            full: hs.full(),
            empty: hs.empty(),
            uniform: None,
            per_port,
        }
    }

    /// The data ports of the switch.
    pub fn ports(&self) -> &[PortNo] {
        &self.ports
    }

    /// `P_{x,y}`: headers that transfer from port `x` to port `y`.
    pub fn transfer(&self, x: PortNo, y: PortNo) -> B::Set {
        let map = match &self.uniform {
            Some(m) => m,
            None => match self.per_port.get(&x) {
                Some(m) => m,
                None => return if y.is_drop() { self.full } else { self.empty },
            },
        };
        map.get(&y).copied().unwrap_or(self.empty)
    }

    /// Non-empty `(y, P_{x,y})` pairs for a given in-port, drop port
    /// included, in deterministic order.
    pub fn outputs(&self, x: PortNo) -> Vec<(PortNo, B::Set)> {
        let map = match &self.uniform {
            Some(m) => m,
            None => match self.per_port.get(&x) {
                Some(m) => m,
                None => return vec![(DROP_PORT, self.full)],
            },
        };
        let mut v: Vec<(PortNo, B::Set)> = map
            .iter()
            .filter(|(_, b)| **b != self.empty)
            .map(|(p, b)| (*p, *b))
            .collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }

    /// Whether any rule made the predicates in-port-dependent.
    pub fn is_port_dependent(&self) -> bool {
        self.uniform.is_none()
    }

    /// Copy these predicates into another backend instance, translating
    /// every set handle via [`HeaderSetBackend::import`]. Handles in `self`
    /// must belong to `src`; the returned predicates' handles belong to
    /// `dst`.
    ///
    /// Reusing one `memo` across all switches of a network makes predicates
    /// that share structure (common prefixes, default drops) translate only
    /// once — this is the seeding step of the sharded parallel build.
    pub fn translated(&self, src: &B, dst: &mut B, memo: &mut B::Memo) -> Self {
        fn tr<B: HeaderSetBackend>(
            map: &HashMap<PortNo, B::Set>,
            src: &B,
            dst: &mut B,
            memo: &mut B::Memo,
        ) -> HashMap<PortNo, B::Set> {
            map.iter()
                .map(|(p, b)| (*p, dst.import(src, *b, memo)))
                .collect()
        }
        SwitchPredicates {
            switch: self.switch,
            ports: self.ports.clone(),
            full: dst.full(),
            empty: dst.empty(),
            uniform: self.uniform.as_ref().map(|m| tr(m, src, dst, memo)),
            per_port: self
                .per_port
                .iter()
                .map(|(x, m)| (*x, tr::<B>(m, src, dst, memo)))
                .collect(),
        }
    }
}
