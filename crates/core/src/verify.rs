//! Tag verification (Algorithm 3, §4.2).

use veridp_packet::TagReport;

use crate::backend::HeaderSetBackend;
use crate::path_table::PathTable;

/// Verdict for one tag report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The header matched a path for the pair and the tag agreed: the packet
    /// followed a control-plane-sanctioned path.
    Pass,
    /// The header matched at least one path's header set, but the reported
    /// tag differs from every matching path's tag: the packet deviated
    /// somewhere en route.
    TagMismatch,
    /// No path for this `(inport, outport)` pair admits the header: the
    /// packet should never have arrived at that outport at all (covers
    /// blackholes, access violations, mis-deliveries).
    NoMatchingPath,
}

impl VerifyOutcome {
    /// Whether the report passed verification.
    pub fn is_pass(&self) -> bool {
        matches!(self, VerifyOutcome::Pass)
    }
}

impl<B: HeaderSetBackend> PathTable<B> {
    /// Algorithm 3: verify a tag report against the path table.
    ///
    /// Looks up the `(inport, outport)` pair, linearly scans its paths for
    /// one whose header set contains the reported header (Fig. 6 justifies
    /// the linear scan), and compares tags.
    pub fn verify(&self, report: &TagReport, hs: &B) -> VerifyOutcome {
        let paths = self.paths(report.inport, report.outport);
        let mut matched_any = false;
        for p in paths {
            if hs.contains(p.headers, &report.header) {
                matched_any = true;
                if p.tag == report.tag {
                    return VerifyOutcome::Pass;
                }
            }
        }
        if matched_any {
            VerifyOutcome::TagMismatch
        } else {
            VerifyOutcome::NoMatchingPath
        }
    }
}
