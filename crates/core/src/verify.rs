//! Tag verification (Algorithm 3, §4.2).
//!
//! Both entry points are instrumented through `veridp-obs`. The scan path
//! batches its call counter and decimates latency (one timed call in 128)
//! through a single thread-local tick (`counted_span!`), so the per-verdict
//! cost is a thread-local increment and a branch — no shared atomics. The
//! indexed path only runs on verdict-cache misses, so it affords an exact
//! counter and a probe-depth histogram per call. Verdicts are never
//! affected; the `obs-off` feature removes all of it.

use veridp_obs as obs;
use veridp_packet::TagReport;

use crate::backend::HeaderSetBackend;
use crate::fastpath::TagIndex;
use crate::path_table::PathTable;

/// Verdict for one tag report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyOutcome {
    /// The header matched a path for the pair and the tag agreed: the packet
    /// followed a control-plane-sanctioned path.
    Pass,
    /// The header matched at least one path's header set, but the reported
    /// tag differs from every matching path's tag: the packet deviated
    /// somewhere en route.
    TagMismatch,
    /// No path for this `(inport, outport)` pair admits the header: the
    /// packet should never have arrived at that outport at all (covers
    /// blackholes, access violations, mis-deliveries).
    NoMatchingPath,
}

impl VerifyOutcome {
    /// Whether the report passed verification.
    pub fn is_pass(&self) -> bool {
        matches!(self, VerifyOutcome::Pass)
    }
}

impl<B: HeaderSetBackend> PathTable<B> {
    /// Algorithm 3: verify a tag report against the path table.
    ///
    /// Looks up the `(inport, outport)` pair, linearly scans its paths for
    /// one whose header set contains the reported header (Fig. 6 justifies
    /// the linear scan), and compares tags.
    pub fn verify(&self, report: &TagReport, hs: &B) -> VerifyOutcome {
        let _span = obs::counted_span!(
            obs::counter!("veridp_verify_scan_total"),
            obs::histogram!("veridp_verify_scan_ns"),
            128
        );
        let paths = self.paths(report.inport, report.outport);
        // Pass probe first: tag equality is one u64 compare, containment a
        // header-set walk, so only run `contains` on tag-equal paths. The
        // verdict is order-independent (Pass if any path contains the header
        // with an equal tag, else TagMismatch if any path contains it at
        // all), so the reordering is semantics-preserving.
        for p in paths {
            if p.tag == report.tag && hs.contains(p.headers, &report.header) {
                return VerifyOutcome::Pass;
            }
        }
        // No pass: tag-equal paths cannot contain the header (they were just
        // tested), so containment among the remaining paths alone decides
        // `matched_any`.
        if paths
            .iter()
            .any(|p| p.tag != report.tag && hs.contains(p.headers, &report.header))
        {
            VerifyOutcome::TagMismatch
        } else {
            VerifyOutcome::NoMatchingPath
        }
    }

    /// Algorithm 3 with a tag-indexed Pass probe: instead of scanning every
    /// path of the pair, probe only the paths whose tag bits equal the
    /// report's (the candidates the [`TagIndex`] recorded). Falls back to a
    /// containment scan over the remaining paths only to distinguish
    /// [`VerifyOutcome::TagMismatch`] from [`VerifyOutcome::NoMatchingPath`]
    /// — i.e. only on the (rare) failing reports.
    ///
    /// Semantically identical to [`PathTable::verify`] for any report; the
    /// differential suite asserts it.
    ///
    /// # Panics
    /// Panics if `index` was built against a different epoch of this table
    /// (see [`PathTable::epoch`]).
    pub fn verify_indexed(&self, report: &TagReport, hs: &B, index: &TagIndex) -> VerifyOutcome {
        assert_eq!(
            index.epoch(),
            self.epoch(),
            "stale tag index: rebuild it after every table update"
        );
        obs::counter!("veridp_verify_indexed_total").inc();
        let paths = self.paths(report.inport, report.outport);
        let candidates = index.candidates(report.inport, report.outport, report.tag.bits());
        obs::histogram!("veridp_fastpath_probe_depth").record(candidates.len() as u64);
        for &i in candidates {
            let p = &paths[i as usize];
            // Candidates share the report's tag *bits*; the width can still
            // differ, and plain `verify` compares whole tags.
            if p.tag == report.tag && hs.contains(p.headers, &report.header) {
                return VerifyOutcome::Pass;
            }
        }
        // No candidate passed, so any tag-equal path fails containment and
        // the verdict rests on the tag-unequal paths, exactly as in the
        // plain scan's mismatch arm.
        if paths
            .iter()
            .any(|p| p.tag != report.tag && hs.contains(p.headers, &report.header))
        {
            VerifyOutcome::TagMismatch
        } else {
            VerifyOutcome::NoMatchingPath
        }
    }
}
