//! Router-configuration transfer predicates (§4.1).
//!
//! The Stanford backbone in the paper is configured with Cisco files, not
//! OpenFlow rules: each device has forwarding rules, per-port **in-bound
//! ACLs**, and per-port **out-bound ACLs** (plus VLANs, which our model
//! folds into ports). The paper composes port predicates exactly as:
//!
//! ```text
//! P_{x,y} = P^in_x ∧ P^fwd_y ∧ P^out_y                        (y ≠ ⊥)
//! P_{x,⊥} = ¬P^in_x ∨ (P^in_x ∧ P^fwd_⊥)
//!         ∨ (P^in_x ∧ ∨_y (P^fwd_y ∧ ¬P^out_y))
//! ```
//!
//! — the three drop terms being (1) filtered by the in-bound ACL,
//! (2) not forwarded anywhere, (3) filtered by the out-bound ACL.
//!
//! [`SwitchConfig`] models one such device; [`SwitchConfig::predicates`]
//! produces a [`SwitchPredicates`] usable by the ordinary path-table
//! builder; [`parse_config`] reads a small Cisco-flavoured text format so
//! whole networks can be described in files (the offline stand-in for the
//! Hassel-parsed Stanford configuration).

use std::collections::HashMap;

use veridp_bdd::Bdd;
use veridp_packet::{PortNo, SwitchId, DROP_PORT};
use veridp_switch::{Action, FlowRule, Match, PortRange, RuleId};

use crate::headerspace::HeaderSpace;
use crate::predicates::SwitchPredicates;

/// One ACL entry: first match wins; an ACL list ends with an implicit
/// deny-all (Cisco semantics). A port without an ACL permits everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AclEntry {
    pub fields: Match,
    pub permit: bool,
}

impl AclEntry {
    /// A permit entry.
    pub fn permit(fields: Match) -> Self {
        AclEntry {
            fields,
            permit: true,
        }
    }

    /// A deny entry.
    pub fn deny(fields: Match) -> Self {
        AclEntry {
            fields,
            permit: false,
        }
    }
}

/// Evaluate an ACL list to the BDD of permitted headers.
fn acl_set(entries: Option<&Vec<AclEntry>>, hs: &mut HeaderSpace) -> Bdd {
    let Some(entries) = entries else {
        return Bdd::TRUE;
    };
    let mut permitted = Bdd::FALSE;
    let mut remaining = Bdd::TRUE;
    for e in entries {
        if remaining.is_false() {
            break;
        }
        let m = hs.match_set(&e.fields);
        let eff = hs.mgr().and(m, remaining);
        remaining = hs.mgr().diff(remaining, m);
        if e.permit {
            permitted = hs.mgr().or(permitted, eff);
        }
    }
    permitted // implicit deny for `remaining`
}

/// A full device configuration.
#[derive(Debug, Clone, Default)]
pub struct SwitchConfig {
    pub name: String,
    /// Data ports `1..=num_ports`.
    pub num_ports: u16,
    /// Destination-based forwarding rules (priority = longest prefix, as the
    /// controller compiles them).
    pub fwd_rules: Vec<FlowRule>,
    /// In-bound ACL per port.
    pub acl_in: HashMap<PortNo, Vec<AclEntry>>,
    /// Out-bound ACL per port.
    pub acl_out: HashMap<PortNo, Vec<AclEntry>>,
}

impl SwitchConfig {
    /// Compose the §4.1 transfer predicates for this device.
    pub fn predicates(&self, switch: SwitchId, hs: &mut HeaderSpace) -> SwitchPredicates {
        let ports: Vec<PortNo> = (1..=self.num_ports).map(PortNo).collect();
        // P^fwd per output port from the forwarding rules (priority scan,
        // in-port-agnostic by construction for routing tables).
        let base = SwitchPredicates::from_rules(switch, &ports, &self.fwd_rules, hs);

        let p_in: HashMap<PortNo, Bdd> = ports
            .iter()
            .map(|&x| (x, acl_set(self.acl_in.get(&x), hs)))
            .collect();
        let p_out: HashMap<PortNo, Bdd> = ports
            .iter()
            .map(|&y| (y, acl_set(self.acl_out.get(&y), hs)))
            .collect();

        let mut transfer: HashMap<(PortNo, PortNo), Bdd> = HashMap::new();
        for &x in &ports {
            let pin = p_in[&x];
            // Forwarding-drop predicate P^fwd_⊥ (rule drop or table miss).
            let fwd_drop = base.transfer(x, DROP_PORT);
            // Term 1: filtered by the in-bound ACL.
            let not_in = hs.mgr().not(pin);
            // Term 2: admitted but not forwarded anywhere.
            let t2 = hs.mgr().and(pin, fwd_drop);
            let mut drop_acc = hs.mgr().or(not_in, t2);
            for &y in &ports {
                let fwd_y = base.transfer(x, y);
                if fwd_y.is_false() {
                    continue;
                }
                let pout = p_out[&y];
                let pass = {
                    let a = hs.mgr().and(pin, fwd_y);
                    hs.mgr().and(a, pout)
                };
                if !pass.is_false() {
                    transfer.insert((x, y), pass);
                }
                // Term 3: forwarded to y but filtered by y's out-bound ACL.
                let blocked = {
                    let nb = hs.mgr().not(pout);
                    let a = hs.mgr().and(pin, fwd_y);
                    hs.mgr().and(a, nb)
                };
                drop_acc = hs.mgr().or(drop_acc, blocked);
            }
            transfer.insert((x, DROP_PORT), drop_acc);
        }
        SwitchPredicates::from_transfer_map(switch, &ports, transfer, hs)
    }
}

/// Errors from the text-config parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

fn parse_prefix(tok: &str, line: usize) -> Result<(u32, u8), ConfigError> {
    if tok == "any" {
        return Ok((0, 0));
    }
    let (addr, plen) = tok
        .split_once('/')
        .ok_or_else(|| err(line, "expected a.b.c.d/len"))?;
    let ip: std::net::Ipv4Addr = addr
        .parse()
        .map_err(|_| err(line, format!("bad address {addr}")))?;
    let plen: u8 = plen
        .parse()
        .map_err(|_| err(line, format!("bad prefix length {plen}")))?;
    if plen > 32 {
        return Err(err(line, "prefix length > 32"));
    }
    Ok((veridp_switch::prefix_mask(u32::from(ip), plen), plen))
}

/// Parse match qualifiers of the form
/// `[src A/B] [dst A/B] [proto N] [sport N[-M]] [dport N[-M]]`.
fn parse_match(tokens: &[&str], line: usize) -> Result<Match, ConfigError> {
    let mut m = Match::ANY;
    let mut it = tokens.iter();
    while let Some(&key) = it.next() {
        if key == "any" {
            continue; // explicit match-all, mainly for `permit any`
        }
        let val = *it
            .next()
            .ok_or_else(|| err(line, format!("{key} needs a value")))?;
        match key {
            "src" => {
                let (ip, plen) = parse_prefix(val, line)?;
                m.src_ip = ip;
                m.src_plen = plen;
            }
            "dst" => {
                let (ip, plen) = parse_prefix(val, line)?;
                m.dst_ip = ip;
                m.dst_plen = plen;
            }
            "proto" => {
                m.proto = Some(
                    val.parse()
                        .map_err(|_| err(line, format!("bad proto {val}")))?,
                );
            }
            "sport" | "dport" => {
                let range = match val.split_once('-') {
                    Some((lo, hi)) => PortRange::new(
                        lo.parse().map_err(|_| err(line, "bad port"))?,
                        hi.parse().map_err(|_| err(line, "bad port"))?,
                    ),
                    None => PortRange::exact(val.parse().map_err(|_| err(line, "bad port"))?),
                };
                if key == "sport" {
                    m.src_port = range;
                } else {
                    m.dst_port = range;
                }
            }
            other => return Err(err(line, format!("unknown qualifier {other}"))),
        }
    }
    Ok(m)
}

/// Parse a multi-device configuration text into per-device configs.
///
/// Grammar (one directive per line, `#` comments):
///
/// ```text
/// switch <name> ports <n>
/// fwd <dst-prefix|any> [qualifiers] -> <port>|drop
/// acl in <port> permit|deny [qualifiers]
/// acl out <port> permit|deny [qualifiers]
/// ```
///
/// Forwarding priority is the destination prefix length (longest prefix
/// match); `fwd ... -> drop` installs an explicit null route. Rule ids are
/// assigned in file order.
pub fn parse_config(text: &str) -> Result<Vec<SwitchConfig>, ConfigError> {
    let mut out: Vec<SwitchConfig> = Vec::new();
    let mut next_id = 1u64;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = stripped.split_whitespace().collect();
        match tokens[0] {
            "switch" => {
                if tokens.len() != 4 || tokens[2] != "ports" {
                    return Err(err(line, "usage: switch <name> ports <n>"));
                }
                let num_ports: u16 = tokens[3].parse().map_err(|_| err(line, "bad port count"))?;
                out.push(SwitchConfig {
                    name: tokens[1].to_string(),
                    num_ports,
                    ..SwitchConfig::default()
                });
            }
            "fwd" => {
                let cfg = out
                    .last_mut()
                    .ok_or_else(|| err(line, "fwd before switch"))?;
                let arrow = tokens
                    .iter()
                    .position(|&t| t == "->")
                    .ok_or_else(|| err(line, "missing ->"))?;
                if arrow + 1 >= tokens.len() {
                    return Err(err(line, "missing output port"));
                }
                let (dst_ip, dst_plen) = parse_prefix(tokens[1], line)?;
                let mut fields = parse_match(&tokens[2..arrow], line)?;
                fields.dst_ip = dst_ip;
                fields.dst_plen = dst_plen;
                let action = if tokens[arrow + 1] == "drop" {
                    Action::Drop
                } else {
                    Action::Forward(PortNo(
                        tokens[arrow + 1]
                            .parse()
                            .map_err(|_| err(line, "bad port"))?,
                    ))
                };
                cfg.fwd_rules.push(FlowRule {
                    id: RuleId(next_id),
                    priority: dst_plen as u16,
                    fields,
                    action,
                });
                next_id += 1;
            }
            "acl" => {
                let cfg = out
                    .last_mut()
                    .ok_or_else(|| err(line, "acl before switch"))?;
                if tokens.len() < 4 {
                    return Err(err(line, "usage: acl in|out <port> permit|deny ..."));
                }
                let port = PortNo(tokens[2].parse().map_err(|_| err(line, "bad port"))?);
                let permit = match tokens[3] {
                    "permit" => true,
                    "deny" => false,
                    other => return Err(err(line, format!("expected permit/deny, got {other}"))),
                };
                let fields = parse_match(&tokens[4..], line)?;
                let entry = AclEntry { fields, permit };
                match tokens[1] {
                    "in" => cfg.acl_in.entry(port).or_default().push(entry),
                    "out" => cfg.acl_out.entry(port).or_default().push(entry),
                    other => return Err(err(line, format!("expected in/out, got {other}"))),
                }
            }
            other => return Err(err(line, format!("unknown directive {other}"))),
        }
    }
    Ok(out)
}
