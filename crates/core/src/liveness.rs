//! Reporter liveness: per-switch / per-pair freshness tracking.
//!
//! Verification is passive — a crashed switch, a dropped session, or a dead
//! agent produces *zero* reports, and silence reads as "consistent". This
//! registry closes that gap: every ingested report and every heartbeat
//! frame refreshes the emitting reporter's freshness, and a periodic
//! [`LivenessRegistry::sweep`] flags previously-active reporters whose
//! silence exceeds the staleness window as [`StaleReporter`]s.
//!
//! Two levels are tracked:
//!
//! * **Switches** — refreshed by heartbeats and by reports leaving the
//!   switch. A switch becomes trackable the moment it first speaks; a
//!   switch that never spoke is never flagged (nothing was promised).
//! * **`(inport, outport)` pairs** — refreshed only by reports. Pair
//!   staleness is *suppressed* unless the pair is in the registry's
//!   active-pair set (pairs with installed forwarding paths, taken from the
//!   path table): a pair with no installed path is legitimately idle and
//!   must never page an operator.
//!
//! The registry is deliberately clock-agnostic: every method takes an
//! explicit `now_ns`, so it works identically under `obs-off` (where the
//! monotonic helper reads 0), in simulation (virtual clocks), and in tests
//! (deterministic sweeps). Each stale episode flags once; any later
//! observation from the same reporter clears the flag and counts a
//! recovery, re-arming the alarm.

use std::collections::{HashMap, HashSet};

use veridp_obs as obs;
use veridp_packet::{PortRef, SwitchId, TagReport};

/// Tuning for the liveness registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessConfig {
    /// Silence beyond this many nanoseconds flags a previously-active
    /// reporter as stale.
    pub window_ns: u64,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        // Generous for a LAN monitoring plane: heartbeat idle timers fire
        // well inside this, so a healthy-but-quiet agent never flags.
        LivenessConfig {
            window_ns: 2_000_000_000,
        }
    }
}

/// Which reporter went stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReporterId {
    /// A reporting switch (heartbeat identity or report exit switch).
    Switch(SwitchId),
    /// An `(inport, outport)` path-table pair with installed paths.
    Pair(PortRef, PortRef),
}

impl std::fmt::Display for ReporterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReporterId::Switch(s) => write!(f, "switch {}", s.0),
            ReporterId::Pair(i, o) => write!(f, "pair {i} => {o}"),
        }
    }
}

/// One stale-reporter finding: a previously-active reporter whose silence
/// exceeded the staleness window at sweep time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleReporter {
    /// Who went quiet.
    pub reporter: ReporterId,
    /// Registry clock of the reporter's last observation.
    pub last_seen_ns: u64,
    /// Silence accumulated when the sweep flagged it (`now - last_seen`);
    /// the "flagged within 2 windows" acceptance gate reads this.
    pub idle_ns: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    last_seen_ns: u64,
    flagged: bool,
}

/// The freshness registry. See the module docs for the model.
#[derive(Debug)]
pub struct LivenessRegistry {
    window_ns: u64,
    switches: HashMap<SwitchId, Entry>,
    pairs: HashMap<(PortRef, PortRef), Entry>,
    /// Pairs with installed forwarding paths — the only pairs whose silence
    /// is alarmable. `None` until the caller publishes the set, which
    /// suppresses *all* pair alarms (fail quiet, never false-page).
    active_pairs: Option<HashSet<(PortRef, PortRef)>>,
    /// Every flag raised so far, in sweep order.
    stale_log: Vec<StaleReporter>,
    /// Flagged reporters that spoke again (stale episodes that healed).
    recovered: u64,
}

impl LivenessRegistry {
    /// A fresh registry with the given staleness window.
    pub fn new(config: LivenessConfig) -> Self {
        LivenessRegistry {
            window_ns: config.window_ns.max(1),
            switches: HashMap::new(),
            pairs: HashMap::new(),
            active_pairs: None,
            stale_log: Vec::new(),
            recovered: 0,
        }
    }

    /// The configured staleness window.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Publish the set of pairs that have installed forwarding paths
    /// (typically every pair the path table holds entries for). Until this
    /// is called, pair-level staleness never flags.
    pub fn set_active_pairs(&mut self, pairs: impl IntoIterator<Item = (PortRef, PortRef)>) {
        self.active_pairs = Some(pairs.into_iter().collect());
    }

    fn touch(e: &mut Entry, now_ns: u64, recovered: &mut u64) {
        if e.flagged {
            e.flagged = false;
            *recovered += 1;
            obs::counter!("veridp_liveness_recovered_total").inc();
        }
        e.last_seen_ns = e.last_seen_ns.max(now_ns);
    }

    /// Fold one ingested report in: refreshes the exit switch and the
    /// report's `(inport, outport)` pair.
    pub fn note_report(&mut self, report: &TagReport, now_ns: u64) {
        let rec = &mut self.recovered;
        Self::touch(
            self.switches.entry(report.outport.switch).or_insert(Entry {
                last_seen_ns: now_ns,
                flagged: false,
            }),
            now_ns,
            rec,
        );
        Self::touch(
            self.pairs
                .entry((report.inport, report.outport))
                .or_insert(Entry {
                    last_seen_ns: now_ns,
                    flagged: false,
                }),
            now_ns,
            rec,
        );
    }

    /// Fold one heartbeat in: refreshes the asserting switch.
    pub fn note_heartbeat(&mut self, switch: SwitchId, now_ns: u64) {
        Self::touch(
            self.switches.entry(switch).or_insert(Entry {
                last_seen_ns: now_ns,
                flagged: false,
            }),
            now_ns,
            &mut self.recovered,
        );
    }

    /// Flag every previously-active, unflagged reporter whose silence
    /// exceeds the window. Pair flags are suppressed for pairs outside the
    /// active-pair set (or when no set was ever published). Returns the
    /// fresh flags in deterministic (sorted) order; they are also appended
    /// to [`LivenessRegistry::stale_log`].
    pub fn sweep(&mut self, now_ns: u64) -> Vec<StaleReporter> {
        let mut found = Vec::new();
        for (&sw, e) in self.switches.iter_mut() {
            if !e.flagged && now_ns.saturating_sub(e.last_seen_ns) > self.window_ns {
                e.flagged = true;
                found.push(StaleReporter {
                    reporter: ReporterId::Switch(sw),
                    last_seen_ns: e.last_seen_ns,
                    idle_ns: now_ns - e.last_seen_ns,
                });
            }
        }
        if let Some(active) = &self.active_pairs {
            for (&pair, e) in self.pairs.iter_mut() {
                if !e.flagged
                    && active.contains(&pair)
                    && now_ns.saturating_sub(e.last_seen_ns) > self.window_ns
                {
                    e.flagged = true;
                    found.push(StaleReporter {
                        reporter: ReporterId::Pair(pair.0, pair.1),
                        last_seen_ns: e.last_seen_ns,
                        idle_ns: now_ns - e.last_seen_ns,
                    });
                }
            }
        }
        found.sort_by_key(|s| s.reporter);
        for s in &found {
            obs::event!(
                "stale_reporter",
                "{} went stale: silent {}ms past a {}ms window",
                s.reporter,
                s.idle_ns / 1_000_000,
                self.window_ns / 1_000_000
            );
        }
        self.stale_log.extend_from_slice(&found);
        obs::gauge!("veridp_liveness_stale_pairs").set(self.flagged_count() as i64);
        found
    }

    /// Every flag raised so far, in sweep order.
    pub fn stale_log(&self) -> &[StaleReporter] {
        &self.stale_log
    }

    /// Reporters currently flagged (stale and not yet recovered).
    pub fn flagged_count(&self) -> usize {
        self.switches.values().filter(|e| e.flagged).count()
            + self.pairs.values().filter(|e| e.flagged).count()
    }

    /// Whether this reporter is currently flagged stale.
    pub fn is_flagged(&self, reporter: ReporterId) -> bool {
        match reporter {
            ReporterId::Switch(s) => self.switches.get(&s).is_some_and(|e| e.flagged),
            ReporterId::Pair(i, o) => self.pairs.get(&(i, o)).is_some_and(|e| e.flagged),
        }
    }

    /// Stale episodes that healed (a flagged reporter spoke again).
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Reporters ever observed: `(switches, pairs)`.
    pub fn tracked(&self) -> (usize, usize) {
        (self.switches.len(), self.pairs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridp_bloom::BloomTag;
    use veridp_packet::FiveTuple;

    fn report(in_sw: u32, out_sw: u32) -> TagReport {
        TagReport::new(
            PortRef::new(in_sw, 1),
            PortRef::new(out_sw, 2),
            FiveTuple::tcp(0x0a000001, 0x0a000002, 9, 80),
            BloomTag::from_bits(0x1234, 16),
        )
    }

    fn reg(window: u64) -> LivenessRegistry {
        LivenessRegistry::new(LivenessConfig { window_ns: window })
    }

    #[test]
    fn never_seen_never_flagged() {
        let mut r = reg(100);
        assert!(r.sweep(1_000_000).is_empty(), "empty registry stays silent");
    }

    #[test]
    fn silence_past_window_flags_switch_once() {
        let mut r = reg(100);
        r.note_heartbeat(SwitchId(7), 50);
        assert!(r.sweep(120).is_empty(), "inside window");
        let flags = r.sweep(200);
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].reporter, ReporterId::Switch(SwitchId(7)));
        assert_eq!(flags[0].idle_ns, 150);
        assert!(r.is_flagged(ReporterId::Switch(SwitchId(7))));
        assert!(r.sweep(10_000).is_empty(), "one flag per episode");
    }

    #[test]
    fn observation_heals_and_rearms() {
        let mut r = reg(100);
        r.note_heartbeat(SwitchId(7), 0);
        assert_eq!(r.sweep(500).len(), 1);
        r.note_heartbeat(SwitchId(7), 600);
        assert!(!r.is_flagged(ReporterId::Switch(SwitchId(7))));
        assert_eq!(r.recovered(), 1);
        assert_eq!(r.sweep(1_000).len(), 1, "re-armed after recovery");
    }

    #[test]
    fn idle_pair_without_installed_paths_never_flags() {
        let mut r = reg(100);
        r.note_report(&report(1, 9), 10);
        // No active-pair set published: pair silence is suppressed, but the
        // exit switch still flags.
        let flags = r.sweep(1_000);
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].reporter, ReporterId::Switch(SwitchId(9)));

        // Published set that excludes the pair: still suppressed.
        let mut r = reg(100);
        r.note_report(&report(1, 9), 10);
        r.set_active_pairs([(PortRef::new(5, 5), PortRef::new(6, 6))]);
        let flags = r.sweep(1_000);
        assert_eq!(flags.len(), 1, "only the switch, never the idle pair");
    }

    #[test]
    fn active_pair_flags_and_reports_refresh_it() {
        let mut r = reg(100);
        let rep = report(1, 9);
        r.set_active_pairs([(rep.inport, rep.outport)]);
        r.note_report(&rep, 10);
        r.note_report(&rep, 150); // refresh both levels
        assert!(r.sweep(240).is_empty());
        let flags = r.sweep(300);
        assert_eq!(flags.len(), 2, "switch and pair both stale: {flags:?}");
        assert_eq!(
            flags[0].reporter,
            ReporterId::Switch(SwitchId(9)),
            "deterministic order"
        );
        assert_eq!(flags[1].reporter, ReporterId::Pair(rep.inport, rep.outport));
        assert_eq!(r.stale_log().len(), 2);
    }
}
