//! Incremental path-table update (§4.4).
//!
//! When the controller adds/deletes/modifies one rule at switch `S`, only the
//! paths that cross the affected `⟨x, S, y⟩` hops change. The update runs in
//! two phases, exactly as the paper describes:
//!
//! 1. **Port-predicate update** — recompute `S`'s transfer predicates and
//!    diff them against the old ones, producing per-`(x, y)` deltas
//!    `Δ⁻` (headers that no longer transfer `x→y`) and `Δ⁺` (headers that
//!    newly do). For pure prefix rules this reduces to the paper's rule-tree
//!    formulation (the new rule's effective match moves between the new
//!    output port and its parent's); computing the delta from the predicate
//!    diff additionally handles ACLs, port ranges, and priority interleaving.
//! 2. **Path-entry update** — subtract `Δ⁻` from every path (and reach
//!    record) through the shrunk hop, pruning emptied paths; then, for every
//!    header set recorded as having *reached* `S` ([`ReachRecord`]), push its
//!    intersection with `Δ⁺` out of the new port and resume the Algorithm-2
//!    traversal from there, merging the resulting paths in.
//!
//! The result is semantically identical to a full rebuild (a property the
//! test-suite checks exhaustively) at a small fraction of the cost — Fig. 14
//! measures it.
//!
//! [`ReachRecord`]: crate::path_table::ReachRecord

use std::collections::HashMap;

use veridp_bloom::BloomTag;
use veridp_obs as obs;
use veridp_packet::{Hop, PortNo, PortRef, SwitchId, DROP_PORT};
use veridp_switch::{Action, FlowRule, RuleId};

use crate::backend::HeaderSetBackend;
use crate::path_table::PathTable;
use crate::predicates::SwitchPredicates;

impl<B: HeaderSetBackend> PathTable<B> {
    /// Incrementally apply a rule addition at switch `s`.
    pub fn add_rule(&mut self, s: SwitchId, rule: FlowRule, hs: &mut B) {
        self.update_switch(s, hs, |rules| {
            rules.retain(|r| r.id != rule.id);
            rules.push(rule);
        });
    }

    /// Incrementally apply a rule deletion at switch `s`.
    pub fn delete_rule(&mut self, s: SwitchId, id: RuleId, hs: &mut B) {
        self.update_switch(s, hs, |rules| {
            rules.retain(|r| r.id != id);
        });
    }

    /// Incrementally apply an action change (delete + add, as in §4.4).
    pub fn modify_rule(&mut self, s: SwitchId, id: RuleId, action: Action, hs: &mut B) {
        self.update_switch(s, hs, |rules| {
            if let Some(r) = rules.iter_mut().find(|r| r.id == id) {
                r.action = action;
            }
        });
    }

    fn update_switch(&mut self, s: SwitchId, hs: &mut B, edit: impl FnOnce(&mut Vec<FlowRule>)) {
        // Updates are control-plane-rate (not report-rate) events, so a
        // full span per update is affordable and the latency distribution
        // is exactly what Fig. 14 measures.
        obs::counter!("veridp_incremental_updates_total").inc();
        let _span = obs::histogram!("veridp_incremental_update_ns").start_span();
        assert!(
            self.tracks_reach(),
            "incremental update requires reach records (use PathTable::build, not build_static)"
        );
        let Some(info) = self.topo().switch(s) else {
            return;
        };
        let ports: Vec<PortNo> = (1..=info.num_ports).map(PortNo).collect();

        // Phase 1: port-predicate update.
        let old = match self.preds.get(&s) {
            Some(p) => p.clone(),
            None => return,
        };
        edit(self.rules.entry(s).or_default());
        // Invalidate fast-path state before any early return below: even a
        // semantically-neutral rule edit must never leave a verdict cache
        // keyed on the pre-edit table. (Conservative; a spurious bump only
        // costs a cache refill.)
        self.bump_epoch();
        obs::counter!("veridp_epoch_bumps_total").inc();
        obs::event!(
            "epoch_bump",
            "rule update at {s:?} bumped table epoch to {}",
            self.epoch()
        );
        let new = SwitchPredicates::from_rules(
            s,
            &ports,
            self.rules.get(&s).map_or(&[][..], |v| v.as_slice()),
            hs,
        );

        let mut all_outs: Vec<PortNo> = ports.clone();
        all_outs.push(DROP_PORT);
        let mut shrink: HashMap<Hop, B::Set> = HashMap::new();
        let mut grow: HashMap<(PortNo, PortNo), B::Set> = HashMap::new();
        for &x in &ports {
            for &y in &all_outs {
                let before = old.transfer(x, y);
                let after = new.transfer(x, y);
                if before == after {
                    continue;
                }
                let minus = hs.diff(before, after);
                if !hs.is_empty(minus) {
                    shrink.insert(
                        Hop {
                            in_port: x,
                            switch: s,
                            out_port: y,
                        },
                        minus,
                    );
                }
                let plus = hs.diff(after, before);
                if !hs.is_empty(plus) {
                    grow.insert((x, y), plus);
                }
            }
        }
        self.preds.insert(s, new);
        if shrink.is_empty() && grow.is_empty() {
            return;
        }

        // Phase 2a: shrink — subtract Δ⁻ from every path and reach record
        // crossing an affected hop.
        if !shrink.is_empty() {
            // Before mutating, snapshot every affected entry into the
            // epoch-grace ring: reports sampled at epochs up to (and
            // including) the pre-bump epoch may still legitimately match
            // these paths while they are in flight (see `crate::grace`).
            let valid_until = self.epoch() - 1;
            let mut retired_pairs: HashMap<(PortRef, PortRef), Vec<crate::grace::RetiredEntry<B>>> =
                HashMap::new();
            let mut retired_count: u64 = 0;
            for (&pair, list) in &self.entries {
                for entry in list {
                    if entry.hops.iter().any(|hop| shrink.contains_key(hop)) {
                        retired_pairs
                            .entry(pair)
                            .or_default()
                            .push(crate::grace::RetiredEntry {
                                headers: entry.headers,
                                tag: entry.tag,
                            });
                        retired_count += 1;
                    }
                }
            }
            if !retired_pairs.is_empty() {
                obs::counter!("veridp_grace_entries_retired_total").add(retired_count);
                self.retired.push(crate::grace::RetiredRecord {
                    valid_until,
                    pairs: retired_pairs,
                });
            }

            let mut pruned: u64 = 0;
            for list in self.entries.values_mut() {
                list.retain_mut(|entry| {
                    for hop in &entry.hops {
                        if let Some(&minus) = shrink.get(hop) {
                            entry.headers = hs.diff(entry.headers, minus);
                            if hs.is_empty(entry.headers) {
                                pruned += 1;
                                return false;
                            }
                        }
                    }
                    true
                });
            }
            self.entries.retain(|_, v| !v.is_empty());
            for records in self.reach.values_mut() {
                records.retain_mut(|r| {
                    for hop in &r.hops {
                        if let Some(&minus) = shrink.get(hop) {
                            r.headers = hs.diff(r.headers, minus);
                            if hs.is_empty(r.headers) {
                                return false;
                            }
                        }
                    }
                    true
                });
            }
            obs::counter!("veridp_incremental_paths_pruned_total").add(pruned);
        }

        // Phase 2b: grow — resume traversal for headers that reached S and
        // now transfer out of a new (x, y) delta.
        if grow.is_empty() {
            return;
        }
        let snapshot: Vec<crate::path_table::ReachRecord<B>> =
            self.reach.get(&s).map(|v| v.to_vec()).unwrap_or_default();
        let tag_bits = self.tag_bits();
        let mut regrown: u64 = 0;
        for rec in snapshot {
            for (&(x, y), &plus) in &grow {
                if rec.at.port != x {
                    continue;
                }
                let h2 = hs.and(rec.headers, plus);
                if hs.is_empty(h2) {
                    continue;
                }
                let hop = Hop {
                    in_port: x,
                    switch: s,
                    out_port: y,
                };
                // Loop guard: skip if this port pair already appears upstream.
                if rec.hops.iter().any(|h| h.in_ref() == rec.at) {
                    continue;
                }
                let mut hops2 = rec.hops.clone();
                hops2.push(hop);
                let tag2 = rec.tag.union(BloomTag::singleton(&hop.encode(), tag_bits));
                let out_ref = PortRef { switch: s, port: y };
                regrown += 1;
                if y.is_drop() || self.topo().is_terminal_port(out_ref) {
                    self.insert_entry(rec.inport, out_ref, h2, hops2, tag2, hs);
                } else if self.topo().is_middlebox_port(out_ref) {
                    self.traverse(rec.inport, out_ref, h2, hops2, tag2, hs);
                } else if let Some(next) = self.topo().peer(out_ref) {
                    self.traverse(rec.inport, next, h2, hops2, tag2, hs);
                }
            }
        }
        obs::counter!("veridp_incremental_paths_regrown_total").add(regrown);
    }
}
