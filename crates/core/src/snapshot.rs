//! RCU-style snapshot publication for the path table: verify workers never
//! block on rule churn.
//!
//! The incremental updater (§4.4, `incremental`) and the verify
//! paths (Algorithm 3) share one [`PathTable`] — under sustained churn a
//! server would stall its hot verify loop exactly when verification matters
//! most. This module separates them with epoch-based publication:
//!
//! * The **writer** ([`SnapshotPublisher`], or the batteries-included
//!   [`ConcurrentTable`]) keeps a mutable *master* table, appends every rule
//!   change to an update log ([`RuleUpdate`]), and publishes immutable
//!   [`TableVersion`]s with a single atomic pointer swap. A new version is
//!   produced by *replaying* only the log entries a recycled buffer missed
//!   through the ordinary incremental update — O(delta) per publish, never
//!   O(table) — so every version converges to the same entries, the same
//!   epoch, and the same [`RetiredRing`](crate::grace::RetiredRing) contents
//!   as the master.
//! * **Readers** ([`ReaderHandle`]) pin a version per batch with two atomic
//!   stores ([`ReaderHandle::pin`]) and verify wait-free against it: no
//!   lock, no retry loop, no interaction with the writer whatsoever.
//! * Superseded versions are **retired into a bounded pool** and recycled
//!   once every pinned reader has advanced past them — the same grace-period
//!   idea the [`RetiredRing`](crate::grace::RetiredRing) applies to
//!   individual path entries, lifted to whole table versions. Snapshot
//!   lifetime, `TagIndex`/`VerdictCache` invalidation, and epoch-grace
//!   verification thereby run on one unified epoch story: the table epoch.
//!
//! # Memory ordering
//!
//! All protocol atomics use `SeqCst`; the single total order makes the
//! reclamation argument short. Publish is *swap pointer, then store
//! `publish_seq`*; pin is *load `publish_seq` into own slot, then load
//! pointer*. Hence a pinned slot value `s` implies the guard's version has
//! sequence `>= s`, and the writer reclaims a retired version `v` only when
//! every non-zero slot holds `s > v.seq`. If the writer's reclaim scan saw a
//! slot empty, that reader's subsequent pointer load is ordered after the
//! writer's swap and can only observe a newer version — so a version chosen
//! for reclaim can never be re-pinned, and neither side ever retries.
//!
//! # Why each version owns a backend
//!
//! [`HeaderSetBackend`] handles are only valid in the instance that created
//! them, and the set algebra needs `&mut` — one shared backend would
//! serialize readers against the writer. Each version therefore carries its
//! own backend instance; verification only needs the `&self` half of the
//! trait ([`HeaderSetBackend::contains`]), which is why reads are wait-free.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use veridp_obs as obs;
use veridp_packet::{SwitchId, TagReport};
use veridp_switch::{Action, FlowRule, RuleId};

use crate::backend::HeaderSetBackend;
use crate::fastpath::{TagIndex, VerdictCache};
use crate::parallel::{verify_batch_summary, verify_batch_summary_indexed, BatchSummary};
use crate::path_table::PathTable;

/// One control-plane rule change, as recorded in the publisher's update log
/// and replayed into version buffers. Mirrors the three incremental
/// operations of §4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleUpdate {
    /// Install (or replace, by id) a rule at a switch.
    Add(SwitchId, FlowRule),
    /// Remove a rule by id.
    Delete(SwitchId, RuleId),
    /// Change a rule's action (delete + add, as in §4.4).
    Modify(SwitchId, RuleId, Action),
}

impl RuleUpdate {
    /// Apply this update to a table through the incremental updater.
    pub(crate) fn apply_to<B: HeaderSetBackend>(&self, table: &mut PathTable<B>, hs: &mut B) {
        match *self {
            RuleUpdate::Add(s, rule) => table.add_rule(s, rule, hs),
            RuleUpdate::Delete(s, id) => table.delete_rule(s, id, hs),
            RuleUpdate::Modify(s, id, action) => table.modify_rule(s, id, action, hs),
        }
    }
}

/// One immutable published table version: a full [`PathTable`] with its own
/// backend instance (handles are instance-local), the tag index built for
/// its epoch when the fast path is on, and the publication bookkeeping.
///
/// Readers see versions only through [`SnapshotGuard`]s, which expose the
/// shared-reference surface; the writer mutates a version only while it is
/// withdrawn from publication and provably unpinned.
pub struct TableVersion<B: HeaderSetBackend> {
    table: PathTable<B>,
    hs: B,
    index: Option<TagIndex>,
    /// Publication sequence number (1-based; 0 is the "unpinned" sentinel in
    /// reader slots).
    seq: u64,
    /// Absolute update-log position this version reflects: the table equals
    /// the master after the first `applied` recorded updates.
    applied: u64,
}

impl<B: HeaderSetBackend> TableVersion<B> {
    /// The version's path table.
    pub fn table(&self) -> &PathTable<B> {
        &self.table
    }

    /// The version's backend instance (read-only half).
    pub fn backend(&self) -> &B {
        &self.hs
    }

    /// Tag index over this version's table, when index publication is on.
    pub fn index(&self) -> Option<&TagIndex> {
        self.index.as_ref()
    }

    /// Publication sequence of this version.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Maximum number of simultaneously-registered reader handles.
const MAX_READERS: usize = 64;

/// How many retired version buffers the publisher keeps for recycling
/// before falling back to cloning the master. Each buffer is a full table
/// copy, so this (together with reader pin discipline) bounds snapshot
/// memory under churn the same way the grace ring's depth bounds retired
/// path entries.
const DEFAULT_POOL_CAP: usize = 3;

/// Publish attempts spin-yield this many times for a reclaimable buffer
/// before giving up and cloning a fresh one (a pinned-forever reader must
/// never block the writer).
const PUBLISH_YIELDS: usize = 64;

/// Raw pointer to a heap-allocated version, owned by the
/// [`SnapshotCell::versions`] registry. Plain `*mut` is neither `Send` nor
/// `Sync`; the wrapper asserts both because ownership and mutation are
/// governed by the publication protocol, not by the pointer itself.
struct VersionPtr<B: HeaderSetBackend>(*mut TableVersion<B>);

// SAFETY: the pointee is only mutated by the single writer while withdrawn
// from publication and unpinned (see the module docs); readers only obtain
// shared references. `TableVersion<B>` is `Send + Sync` because `B` and
// `B::Set` are.
unsafe impl<B: HeaderSetBackend> Send for VersionPtr<B> {}
unsafe impl<B: HeaderSetBackend> Sync for VersionPtr<B> {}

/// The shared publication cell: everything readers touch. Owned by an
/// `Arc` held by the publisher and every reader handle, so versions stay
/// alive as long as anyone could still pin them.
struct SnapshotCell<B: HeaderSetBackend> {
    /// The currently-published version. Readers load; the writer swaps.
    current: AtomicPtr<TableVersion<B>>,
    /// Sequence of the current version. Stored *after* the pointer swap, so
    /// a reader that observed sequence `s` loads a pointer of sequence
    /// `>= s`.
    publish_seq: AtomicU64,
    /// Per-reader pin slots: 0 = unpinned, otherwise the `publish_seq`
    /// observed at pin time.
    slots: [AtomicU64; MAX_READERS],
    /// Slot allocation bitmap for reader handles.
    claimed: [AtomicBool; MAX_READERS],
    /// All live version allocations, including the published one. Locked
    /// only by the writer (allocation, replay, reclaim) — never on any read
    /// path.
    versions: Mutex<Vec<VersionPtr<B>>>,
}

impl<B: HeaderSetBackend> Drop for SnapshotCell<B> {
    fn drop(&mut self) {
        // The cell dropping means no publisher and no reader handle remain,
        // so no guard can exist: every version is exclusively ours to free.
        let versions = self.versions.get_mut().expect("snapshot registry poisoned");
        for v in versions.drain(..) {
            // SAFETY: allocated via Box::into_raw in `install`, never freed
            // elsewhere (reclaim recycles in place, it does not free).
            drop(unsafe { Box::from_raw(v.0) });
        }
    }
}

impl<B: HeaderSetBackend> SnapshotCell<B> {
    fn new() -> Self {
        SnapshotCell {
            current: AtomicPtr::new(std::ptr::null_mut()),
            publish_seq: AtomicU64::new(0),
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
            claimed: std::array::from_fn(|_| AtomicBool::new(false)),
            versions: Mutex::new(Vec::new()),
        }
    }

    /// Whether a retired version with sequence `seq` can be reused: no
    /// pinned reader may still reach it (see the module docs for why no
    /// retry is needed).
    fn reclaimable(&self, seq: u64) -> bool {
        self.slots.iter().all(|slot| match slot.load(SeqCst) {
            0 => true,
            s => s > seq,
        })
    }
}

/// Pin a snapshot from `cell` into `slot`. Shared by [`ReaderHandle::pin`]
/// and the split-borrow verify helpers.
fn pin_at<B: HeaderSetBackend>(cell: &SnapshotCell<B>, slot: usize) -> SnapshotGuard<'_, B> {
    let seq = cell.publish_seq.load(SeqCst);
    cell.slots[slot].store(seq, SeqCst);
    let ptr = cell.current.load(SeqCst);
    debug_assert!(!ptr.is_null(), "pin before first publish");
    // SAFETY: `ptr` was published after the slot store above, so its version
    // has sequence >= our slot value and the writer's reclaim rule keeps it
    // alive (and un-mutated) until the guard drops and clears the slot.
    let version = unsafe { &*ptr };
    SnapshotGuard {
        cell,
        slot,
        version,
        pinned_at: obs::ENABLED.then(Instant::now),
    }
}

/// A pinned snapshot: wait-free shared access to one [`TableVersion`] for
/// the guard's lifetime. Dropping the guard unpins (one atomic store) and
/// records the pin duration histogram.
pub struct SnapshotGuard<'a, B: HeaderSetBackend> {
    cell: &'a SnapshotCell<B>,
    slot: usize,
    version: &'a TableVersion<B>,
    pinned_at: Option<Instant>,
}

impl<B: HeaderSetBackend> SnapshotGuard<'_, B> {
    /// The pinned version.
    pub fn version(&self) -> &TableVersion<B> {
        self.version
    }

    /// The pinned version's path table.
    pub fn table(&self) -> &PathTable<B> {
        &self.version.table
    }

    /// The pinned version's backend.
    pub fn backend(&self) -> &B {
        &self.version.hs
    }

    /// The pinned version's tag index, when published.
    pub fn index(&self) -> Option<&TagIndex> {
        self.version.index.as_ref()
    }
}

impl<B: HeaderSetBackend> Drop for SnapshotGuard<'_, B> {
    fn drop(&mut self) {
        self.cell.slots[self.slot].store(0, SeqCst);
        if let Some(t0) = self.pinned_at {
            obs::histogram!("veridp_snapshot_pin_ns").record_duration(t0.elapsed());
        }
    }
}

/// A registered reader: owns one pin slot of the publication cell plus
/// private per-worker verdict caches, so batch verification through the
/// handle touches no shared mutable state at all.
///
/// Handles are `Send`: create them on the writer side
/// ([`SnapshotPublisher::reader`]) and move them into verify threads.
pub struct ReaderHandle<B: HeaderSetBackend> {
    cell: Arc<SnapshotCell<B>>,
    slot: usize,
    /// Worker-private verdict caches for indexed batch verification, kept
    /// warm across pins (epoch keying invalidates them lazily on churn).
    caches: Vec<VerdictCache>,
}

impl<B: HeaderSetBackend> ReaderHandle<B> {
    fn register(cell: Arc<SnapshotCell<B>>) -> Self {
        let slot = (0..MAX_READERS)
            .find(|&i| {
                cell.claimed[i]
                    .compare_exchange(false, true, SeqCst, SeqCst)
                    .is_ok()
            })
            .expect("snapshot reader limit (64 handles) exceeded");
        ReaderHandle {
            cell,
            slot,
            caches: Vec::new(),
        }
    }

    /// Pin the currently-published version: two atomic operations, never a
    /// lock, never a retry. The table epoch, tag index, grace ring, and
    /// backend exposed by the guard are mutually consistent for the guard's
    /// whole lifetime, regardless of writer churn.
    pub fn pin(&mut self) -> SnapshotGuard<'_, B> {
        pin_at(&self.cell, self.slot)
    }

    /// Verify a report batch against a pinned snapshot and return the
    /// aggregate summary. Uses the version's published tag index with this
    /// handle's private worker caches when available, the plain Algorithm-3
    /// scan otherwise; verdicts are identical either way.
    pub fn verify_summary(&mut self, reports: &[TagReport], threads: usize) -> BatchSummary {
        let ReaderHandle { cell, slot, caches } = self;
        let guard = pin_at(cell, *slot);
        match guard.index() {
            Some(index) => verify_batch_summary_indexed(
                guard.table(),
                guard.backend(),
                index,
                caches,
                reports,
                threads,
            ),
            None => verify_batch_summary(guard.table(), guard.backend(), reports, threads),
        }
    }
}

impl<B: HeaderSetBackend> Drop for ReaderHandle<B> {
    fn drop(&mut self) {
        self.cell.slots[self.slot].store(0, SeqCst);
        self.cell.claimed[self.slot].store(false, SeqCst);
    }
}

/// Writer-side counters of the publication machinery, mirrored into the obs
/// registry and exposed as plain values for tests and reporting (obs may be
/// compiled out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Versions published (atomic pointer swaps).
    pub publishes: u64,
    /// Retired version buffers recycled after their grace period (every
    /// pinned reader advanced past them).
    pub reclaims: u64,
    /// Publishes that had to deep-clone the master because no retired
    /// buffer was reclaimable within the yield budget.
    pub clone_fallbacks: u64,
    /// Spin-yields spent waiting for a reclaimable buffer.
    pub publish_yields: u64,
}

/// The publication side of the snapshot layer: update log, version pool,
/// and the atomic publish protocol. Deliberately does *not* own the master
/// table — the [`VeriDpServer`](crate::VeriDpServer) keeps its table and
/// backend exactly as before and layers a publisher next to them; the
/// standalone [`ConcurrentTable`] bundles master and publisher for tests,
/// benches, and the demo.
pub struct SnapshotPublisher<B: HeaderSetBackend> {
    cell: Arc<SnapshotCell<B>>,
    /// Update log suffix still needed by the laggiest version buffer.
    log: VecDeque<RuleUpdate>,
    /// Absolute index of `log[0]`.
    log_base: u64,
    /// Total updates recorded since construction.
    total: u64,
    /// Whether published versions carry a [`TagIndex`].
    build_index: bool,
    pool_cap: usize,
    next_seq: u64,
    stats: SnapshotStats,
}

impl<B: HeaderSetBackend> std::fmt::Debug for SnapshotPublisher<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotPublisher")
            .field("total_updates", &self.total)
            .field("log_len", &self.log.len())
            .field("next_seq", &self.next_seq)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<B: HeaderSetBackend> SnapshotPublisher<B> {
    /// Create a publisher and publish the first version: a deep copy of
    /// `master` into a fresh backend instance. `build_index` controls
    /// whether versions carry a per-epoch [`TagIndex`] (the fast path).
    pub fn new(master: &PathTable<B>, hs: &B, build_index: bool) -> Self {
        let mut p = SnapshotPublisher {
            cell: Arc::new(SnapshotCell::new()),
            log: VecDeque::new(),
            log_base: 0,
            total: 0,
            build_index,
            pool_cap: DEFAULT_POOL_CAP,
            next_seq: 1,
            stats: SnapshotStats::default(),
        };
        let version = p.clone_version(master, hs);
        p.install(version);
        p
    }

    /// Change the retired-buffer pool cap (number of superseded versions
    /// kept for recycling before publish clones instead).
    pub fn set_pool_cap(&mut self, cap: usize) {
        self.pool_cap = cap.max(1);
    }

    /// Record one applied update in the log. The caller must have applied
    /// the same update to the master table already (or do so before the
    /// next [`publish`](Self::publish)); versions replay the log in order.
    pub fn record(&mut self, upd: RuleUpdate) {
        self.log.push_back(upd);
        self.total += 1;
    }

    /// Register a new reader. Handles are `Send`; hand them to verify
    /// threads before starting churn.
    pub fn reader(&self) -> ReaderHandle<B> {
        ReaderHandle::register(Arc::clone(&self.cell))
    }

    /// Sequence number of the currently-published version.
    pub fn published_seq(&self) -> u64 {
        self.cell.publish_seq.load(SeqCst)
    }

    /// Epoch of the currently-published version's table.
    pub fn published_epoch(&self) -> u64 {
        let ptr = self.cell.current.load(SeqCst);
        // SAFETY: published versions are immutable and outlive the cell's
        // registry; `&self` keeps the cell alive.
        unsafe { (*ptr).table.epoch() }
    }

    /// Number of live version allocations (published + retired pool).
    pub fn live_versions(&self) -> usize {
        self.cell
            .versions
            .lock()
            .expect("snapshot registry poisoned")
            .len()
    }

    /// Writer-side publication counters.
    pub fn stats(&self) -> &SnapshotStats {
        &self.stats
    }

    /// Whether the published version already reflects every recorded
    /// update.
    pub fn is_current(&self) -> bool {
        let ptr = self.cell.current.load(SeqCst);
        // SAFETY: as in `published_epoch`.
        unsafe { (*ptr).applied == self.total }
    }

    /// Publish a version reflecting every recorded update. Recycles a
    /// retired buffer when one is past its grace period (replaying only the
    /// log entries it missed — O(delta)); falls back to deep-cloning
    /// `master` when the pool is empty or every buffer is still pinned.
    /// No-op when the published version is already current.
    pub fn publish(&mut self, master: &PathTable<B>, hs: &B) {
        if self.is_current() {
            return;
        }
        let _span = obs::histogram!("veridp_snapshot_publish_ns").start_span();
        let version = match self.acquire_buffer() {
            Some(v) => v,
            None => {
                self.stats.clone_fallbacks += 1;
                obs::counter!("veridp_snapshot_clone_fallbacks_total").inc();
                self.clone_version(master, hs)
            }
        };
        self.install(version);
        self.trim_log();
        self.shrink_pool();
    }

    /// Free reclaimable buffers beyond the pool cap — clone fallbacks taken
    /// while readers were slow must not inflate memory forever.
    fn shrink_pool(&mut self) {
        let current = self.cell.current.load(SeqCst);
        let mut versions = self
            .cell
            .versions
            .lock()
            .expect("snapshot registry poisoned");
        let mut i = 0;
        while versions.len() > self.pool_cap + 1 && i < versions.len() {
            let v = &versions[i];
            // SAFETY: reading `seq` of a version we own.
            if v.0 != current && self.cell.reclaimable(unsafe { (*v.0).seq }) {
                let ptr = versions.swap_remove(i);
                // SAFETY: withdrawn, not current, provably unpinned (and
                // never re-pinnable) — exclusive ownership.
                drop(unsafe { Box::from_raw(ptr.0) });
                continue;
            }
            i += 1;
        }
        obs::gauge!("veridp_snapshot_live_versions").set(versions.len() as i64);
    }

    /// Withdraw a reclaimable retired buffer from the pool and bring it up
    /// to date by replaying the log it missed. Returns `None` when no
    /// buffer becomes reclaimable within the yield budget.
    fn acquire_buffer(&mut self) -> Option<Box<TableVersion<B>>> {
        for round in 0..=PUBLISH_YIELDS {
            let current = self.cell.current.load(SeqCst);
            let mut versions = self
                .cell
                .versions
                .lock()
                .expect("snapshot registry poisoned");
            if versions.len() <= self.pool_cap {
                // Pool not full yet: prefer growing it over waiting, so a
                // long-pinned reader never slows the writer down.
                return None;
            }
            let pos = versions.iter().position(|v| {
                v.0 != current && {
                    // SAFETY: reading `seq` of a version we own; concurrent
                    // readers only read too.
                    let seq = unsafe { (*v.0).seq };
                    self.cell.reclaimable(seq)
                }
            });
            if let Some(pos) = pos {
                let ptr = versions.swap_remove(pos);
                drop(versions);
                self.stats.reclaims += 1;
                obs::counter!("veridp_snapshot_reclaims_total").inc();
                // SAFETY: the buffer is withdrawn from the registry, is not
                // the published version, and `reclaimable` proved no reader
                // holds or can re-obtain it — exclusive access.
                let mut version = unsafe { Box::from_raw(ptr.0) };
                self.replay(&mut version);
                return Some(version);
            }
            drop(versions);
            if round < PUBLISH_YIELDS {
                self.stats.publish_yields += 1;
                obs::counter!("veridp_snapshot_publish_yields_total").inc();
                std::thread::yield_now();
            }
        }
        None
    }

    /// Replay the log entries `version` missed, converging it to the master
    /// state (same entries, same epoch, same retired-ring contents — the
    /// incremental updater is deterministic given table + update order).
    fn replay(&self, version: &mut TableVersion<B>) {
        debug_assert!(
            version.applied >= self.log_base,
            "log trimmed past a live buffer"
        );
        for i in version.applied..self.total {
            let upd = self.log[(i - self.log_base) as usize];
            upd.apply_to(&mut version.table, &mut version.hs);
        }
        version.applied = self.total;
        version.index = self.build_index.then(|| TagIndex::build(&version.table));
    }

    /// Deep-copy the master into a brand-new version buffer.
    fn clone_version(&self, master: &PathTable<B>, hs: &B) -> Box<TableVersion<B>> {
        let mut fresh = hs.fork_worker();
        let table = master.translated(hs, &mut fresh);
        let index = self.build_index.then(|| TagIndex::build(&table));
        Box::new(TableVersion {
            table,
            hs: fresh,
            index,
            seq: 0,
            applied: self.total,
        })
    }

    /// Stamp, register, and atomically publish a ready version.
    fn install(&mut self, mut version: Box<TableVersion<B>>) {
        version.seq = self.next_seq;
        self.next_seq += 1;
        let seq = version.seq;
        let ptr = Box::into_raw(version);
        {
            let mut versions = self
                .cell
                .versions
                .lock()
                .expect("snapshot registry poisoned");
            versions.push(VersionPtr(ptr));
            obs::gauge!("veridp_snapshot_live_versions").set(versions.len() as i64);
        }
        // Protocol order: swap the pointer first, then advance the
        // sequence. A reader that observes the new sequence is guaranteed
        // to load this (or a newer) pointer.
        self.cell.current.swap(ptr, SeqCst);
        self.cell.publish_seq.store(seq, SeqCst);
        self.stats.publishes += 1;
        obs::counter!("veridp_snapshot_publishes_total").inc();
    }

    /// Drop log entries every live buffer has already applied.
    fn trim_log(&mut self) {
        let min_applied = {
            let versions = self
                .cell
                .versions
                .lock()
                .expect("snapshot registry poisoned");
            versions
                .iter()
                // SAFETY: reading writer-side bookkeeping of versions we own.
                .map(|v| unsafe { (*v.0).applied })
                .min()
                .unwrap_or(self.total)
        };
        while self.log_base < min_applied {
            self.log.pop_front();
            self.log_base += 1;
        }
    }
}

/// A path table with built-in snapshot publication: the master table, its
/// backend, and a [`SnapshotPublisher`] kept in lock-step. Every
/// [`apply`](Self::apply) runs the incremental update on the master,
/// records it in the log, and publishes — so the published snapshot always
/// carries the master's epoch and readers are never more than one atomic
/// load behind the control plane.
pub struct ConcurrentTable<B: HeaderSetBackend> {
    table: PathTable<B>,
    hs: B,
    publisher: SnapshotPublisher<B>,
}

impl<B: HeaderSetBackend> ConcurrentTable<B> {
    /// Build the master table and publish its first snapshot. `build_index`
    /// enables per-version tag indexes (the verification fast path).
    pub fn build(
        topo: &veridp_topo::Topology,
        rules: &std::collections::HashMap<SwitchId, Vec<FlowRule>>,
        mut hs: B,
        tag_bits: u32,
        build_index: bool,
    ) -> Self {
        let table = PathTable::build(topo, rules, &mut hs, tag_bits);
        let publisher = SnapshotPublisher::new(&table, &hs, build_index);
        ConcurrentTable {
            table,
            hs,
            publisher,
        }
    }

    /// Apply one rule update to the master and publish the new snapshot.
    pub fn apply(&mut self, upd: RuleUpdate) {
        upd.apply_to(&mut self.table, &mut self.hs);
        self.publisher.record(upd);
        self.publisher.publish(&self.table, &self.hs);
    }

    /// Apply a batch of updates with a single publication at the end
    /// (readers observe the batch atomically).
    pub fn apply_batch(&mut self, upds: &[RuleUpdate]) {
        for upd in upds {
            upd.apply_to(&mut self.table, &mut self.hs);
            self.publisher.record(*upd);
        }
        self.publisher.publish(&self.table, &self.hs);
    }

    /// The master path table (writer side; reflects every applied update).
    pub fn table(&self) -> &PathTable<B> {
        &self.table
    }

    /// The master backend.
    pub fn backend(&self) -> &B {
        &self.hs
    }

    /// Register a wait-free reader.
    pub fn reader(&self) -> ReaderHandle<B> {
        self.publisher.reader()
    }

    /// The publication machinery (counters, pool controls).
    pub fn publisher(&self) -> &SnapshotPublisher<B> {
        &self.publisher
    }

    /// Mutable publication machinery ([`SnapshotPublisher::set_pool_cap`]).
    pub fn publisher_mut(&mut self) -> &mut SnapshotPublisher<B> {
        &mut self.publisher
    }
}
