//! VeriDP core: the paper's primary contribution.
//!
//! The pipeline from controller configuration to verification verdict:
//!
//! 1. [`HeaderSpace`] maps 5-tuple headers onto a 104-variable BDD space;
//! 2. [`SwitchPredicates`] turns a switch's (logical) flow rules into
//!    transfer predicates `P_{x,y}` — which headers can go from port `x` to
//!    port `y`, including the drop port `⊥` (§4.1);
//! 3. [`PathTable`] runs Algorithm 2 over the topology and predicates,
//!    producing, per `(inport, outport)` pair, the set of forwarding paths,
//!    each with a BDD header set and a Bloom-filter tag;
//! 4. [`PathTable::verify`] implements Algorithm 3: match the reported
//!    header against the pair's paths and compare tags; [`VerifyFastPath`]
//!    layers a tag-indexed candidate probe and an epoch-invalidated verdict
//!    cache over it with identical verdicts (the steady-state hot loop);
//! 5. [`PathTable::localize`] implements Algorithm 4 (PathInfer):
//!    reconstruct the real path a failed packet took and name the first
//!    deviating switch;
//! 6. [`PathTable::add_rule`] / [`PathTable::delete_rule`] update the table
//!    incrementally when the controller changes one rule (§4.4), without a
//!    full rebuild;
//! 7. [`VeriDpServer`] glues it together: it intercepts the controller's
//!    OpenFlow stream, keeps the path table synchronized, consumes tag
//!    reports, and keeps verification statistics;
//! 8. [`repair`] (paper future work) proposes the FlowMods that reconcile a
//!    localized faulty switch with the logical rule set.
//!
//! # Example
//!
//! ```
//! use std::collections::HashMap;
//! use veridp_core::{HeaderSpace, PathTable, VerifyOutcome};
//! use veridp_packet::{FiveTuple, PortNo, PortRef, SwitchId, TagReport};
//! use veridp_switch::{Action, FlowRule, Match};
//! use veridp_bloom::{BloomTag, HopEncoder};
//! use veridp_topo::gen;
//!
//! // Two-switch chain forwarding 10.0.2.0/24 towards h2.
//! let topo = gen::linear(2);
//! let mut rules: HashMap<SwitchId, Vec<FlowRule>> = HashMap::new();
//! let m = Match::dst_prefix(gen::ip(10, 0, 2, 0), 24);
//! rules.insert(SwitchId(1), vec![FlowRule::new(1, 24, m, Action::Forward(PortNo(2)))]);
//! rules.insert(SwitchId(2), vec![FlowRule::new(2, 24, m, Action::Forward(PortNo(2)))]);
//!
//! let mut hs = HeaderSpace::new();
//! let table = PathTable::build(&topo, &rules, &mut hs, 16);
//!
//! // A correctly-forwarded packet's report verifies.
//! let header = FiveTuple::tcp(gen::ip(10, 0, 1, 1), gen::ip(10, 0, 2, 1), 9, 80);
//! let mut tag = BloomTag::default_width();
//! tag.insert(&HopEncoder::encode(1, 1, 2));
//! tag.insert(&HopEncoder::encode(1, 2, 2));
//! let report = TagReport::new(PortRef::new(1, 1), PortRef::new(2, 2), header, tag);
//! assert_eq!(table.verify(&report, &hs), VerifyOutcome::Pass);
//! ```

mod backend;
pub mod config;
mod fastpath;
pub mod grace;
mod headerspace;
mod incremental;
pub mod liveness;
mod localize;
pub mod parallel;
mod parallel_build;
mod path_table;
mod predicates;
pub mod repair;
pub mod rewrite;
mod robust;
pub mod ruletree;
mod server;
pub mod snapshot;
mod verify;

pub use backend::HeaderSetBackend;
pub use fastpath::{FastPathStats, TagIndex, VerdictCache, VerifyFastPath};
pub use grace::{RetiredEntry, RetiredRecord, RetiredRing, DEFAULT_GRACE_DEPTH};
pub use headerspace::HeaderSpace;
pub use liveness::{LivenessConfig, LivenessRegistry, ReporterId, StaleReporter};
pub use localize::{InferredPath, LocalizeOutcome};
pub use parallel::{
    verify_batch, verify_batch_fast, verify_batch_summary, verify_batch_summary_fast,
    verify_batch_summary_indexed, BatchSummary,
};
pub use path_table::{PathEntry, PathTable, PathTableStats, ReachRecord};
pub use predicates::SwitchPredicates;
pub use robust::{Disposition, RecentFilter, RobustConfig, RobustState};
pub use server::{
    Alarm, AlarmAggregator, ConfirmedAlarm, FlightDump, FlightEvent, RobustHarvest, RobustWorker,
    ServerStats, VeriDpServer,
};
pub use snapshot::{
    ConcurrentTable, ReaderHandle, RuleUpdate, SnapshotGuard, SnapshotPublisher, SnapshotStats,
    TableVersion,
};
pub use verify::VerifyOutcome;

#[cfg(test)]
mod tests;
