//! Robust report ingest: deduplication, quarantine, and their knobs.
//!
//! Reports reach the server over a lossy, reordering, duplicating transport
//! (plain UDP in the paper, §5). The robust ingest path
//! ([`crate::VeriDpServer::ingest_robust`]) layers three defenses over plain
//! verification, each bounded and counted:
//!
//! 1. **Deduplication** ([`RecentFilter`]) — an exact bounded filter over
//!    recently-seen reports, so a duplicated frame neither double-counts
//!    statistics nor double-feeds alarm confirmation.
//! 2. **Epoch grace** ([`crate::grace`]) — failing reports sampled before
//!    the table's current epoch are re-checked against recently-retired
//!    paths.
//! 3. **Quarantine** — a failing old-epoch report that grace cannot explain
//!    is *held*, not failed: it may be a mixed-epoch trajectory (sampled
//!    while an update was propagating hop by hop). Once updates settle
//!    ([`crate::VeriDpServer::settle`]) the quarantine drains through
//!    grace-aware re-verification and only then do verdicts land in the
//!    statistics and the alarm aggregator. Overflow sheds the oldest report
//!    by resolving it immediately (counted, never silently dropped).
//!
//! With no update in flight (every report stamped with the current epoch)
//! none of the three arms can trigger, and robust ingest is bit-identical to
//! plain verification — the differential suite asserts this.

use std::collections::{HashSet, VecDeque};

use veridp_packet::TagReport;

/// Tuning for the robust ingest path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RobustConfig {
    /// Entries kept by the duplicate filter. Must exceed the largest burst
    /// between a frame and its duplicate; defaults comfortably above any
    /// realistic reorder window.
    pub dedup_capacity: usize,
    /// Maximum reports held in quarantine before overflow shedding.
    pub quarantine_capacity: usize,
    /// Epoch-grace ring depth applied to the path table on enable
    /// (see [`crate::DEFAULT_GRACE_DEPTH`]).
    pub grace_depth: usize,
    /// Alarm confirmation threshold K: a `(pair, suspect)` needs K distinct
    /// failing observations before its alarm is confirmed.
    pub confirm_k: u64,
    /// Sliding confirmation window N (in failing observations): only the
    /// last N failures network-wide can contribute to a confirmation.
    pub confirm_window: u64,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            dedup_capacity: 8192,
            quarantine_capacity: 4096,
            grace_depth: crate::grace::DEFAULT_GRACE_DEPTH,
            confirm_k: 3,
            confirm_window: 256,
        }
    }
}

/// Exact bounded filter over recently-seen reports (FIFO eviction).
///
/// Exactness matters: a probabilistic filter would occasionally swallow a
/// *fresh* report, and under K-of-N confirmation every genuine failing
/// observation counts. The window only needs to cover the transport's
/// duplication horizon, so a few thousand entries suffice.
#[derive(Debug, Default)]
pub struct RecentFilter {
    capacity: usize,
    seen: HashSet<TagReport>,
    order: VecDeque<TagReport>,
}

impl RecentFilter {
    /// A filter remembering at most `capacity` recent reports.
    pub fn new(capacity: usize) -> Self {
        RecentFilter {
            capacity,
            seen: HashSet::with_capacity(capacity.min(1 << 16)),
            order: VecDeque::with_capacity(capacity.min(1 << 16)),
        }
    }

    /// Record a report; `true` if it is fresh (not currently in the window),
    /// `false` if it duplicates a recent one. A zero-capacity filter treats
    /// everything as fresh (dedup disabled).
    pub fn insert(&mut self, report: &TagReport) -> bool {
        if self.capacity == 0 {
            return true;
        }
        if !self.seen.insert(*report) {
            return false;
        }
        self.order.push_back(*report);
        if self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        true
    }

    /// Number of reports currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the filter is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// What [`crate::VeriDpServer::ingest_robust`] did with one report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Duplicate of a recently-seen report; dropped, counted.
    Duplicate,
    /// Passed plain verification.
    Passed,
    /// Failed plain verification but a retired path explains it (update
    /// race); counted as a pass.
    Graced,
    /// Old-epoch failure grace could not explain; held for
    /// [`crate::VeriDpServer::settle`].
    Quarantined,
    /// Current-epoch failure: verified, localized, fed to alarms.
    Failed,
}

/// Mutable state of the robust ingest path, owned by the server while
/// robust mode is enabled.
pub struct RobustState {
    pub config: RobustConfig,
    pub(crate) filter: RecentFilter,
    pub(crate) quarantine: VecDeque<TagReport>,
    /// Alarm aggregation with K-of-N confirmation, fed only by resolved
    /// (non-duplicate, non-graced) failures.
    pub alarms: crate::server::AlarmAggregator,
}

impl std::fmt::Debug for RobustState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RobustState")
            .field("config", &self.config)
            .field("filter", &self.filter.len())
            .field("quarantine", &self.quarantine.len())
            .finish()
    }
}

impl RobustState {
    /// Fresh state for the given configuration.
    pub fn new(config: RobustConfig) -> Self {
        let filter = RecentFilter::new(config.dedup_capacity);
        let alarms = crate::server::AlarmAggregator::with_confirmation(
            config.confirm_k,
            config.confirm_window,
        );
        RobustState {
            config,
            filter,
            quarantine: VecDeque::new(),
            alarms,
        }
    }

    /// Reports currently held in quarantine.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.len()
    }
}
