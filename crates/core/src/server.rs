//! The VeriDP server (§3.2, §3.4).
//!
//! Sits alongside the controller, intercepts the OpenFlow message stream to
//! keep its path table synchronized with the *intended* configuration, and
//! verifies tag reports arriving from exit switches. On verification failure
//! it runs fault localization and accumulates statistics.

use std::collections::{HashMap, VecDeque};

use veridp_obs as obs;
use veridp_packet::{SwitchId, TagReport};
use veridp_switch::OfMessage;
use veridp_topo::Topology;

use crate::backend::HeaderSetBackend;
use crate::fastpath::VerifyFastPath;
use crate::headerspace::HeaderSpace;
use crate::localize::LocalizeOutcome;
use crate::parallel::BatchSummary;
use crate::path_table::PathTable;
use crate::robust::{Disposition, RobustConfig, RobustState};
use crate::snapshot::{ReaderHandle, RuleUpdate, SnapshotPublisher, SnapshotStats};
use crate::verify::VerifyOutcome;

/// The server's snapshot publication layer ([`crate::snapshot`]), when
/// enabled: the publisher kept in lock-step with the master table, plus the
/// server's own reader handle so the ingest paths pin a version per
/// batch/report instead of reading the master directly.
struct SnapshotLayer<B: HeaderSetBackend> {
    publisher: SnapshotPublisher<B>,
    reader: ReaderHandle<B>,
}

impl<B: HeaderSetBackend> SnapshotLayer<B> {
    fn new(table: &PathTable<B>, hs: &B, build_index: bool) -> Self {
        let publisher = SnapshotPublisher::new(table, hs, build_index);
        let reader = publisher.reader();
        SnapshotLayer { publisher, reader }
    }
}

/// Running verification statistics.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    pub reports: u64,
    pub passed: u64,
    pub tag_mismatch: u64,
    pub no_matching_path: u64,
    /// Localizations attempted / with at least one candidate path.
    pub localizations: u64,
    pub localized: u64,
    /// Verdicts answered from the fast path's verdict cache. Both cache
    /// counters stay zero while the fast path is disabled.
    pub cache_hits: u64,
    /// Verdicts that missed the cache and were computed against the path
    /// table (via the tag index).
    pub cache_misses: u64,
    /// Reports dropped by the robust ingest's duplicate filter (not counted
    /// in `reports`). All four robust counters stay zero outside robust
    /// ingest ([`VeriDpServer::ingest_robust`]).
    pub duplicates: u64,
    /// Failing reports converted to a Pass by epoch grace (included in
    /// `passed`).
    pub graced: u64,
    /// Reports that entered the quarantine queue (counted into the verdict
    /// totals only once resolved at [`VeriDpServer::settle`] or shed).
    pub quarantined: u64,
    /// Quarantined reports resolved early by overflow shedding.
    pub shed: u64,
    /// Per-run end-to-end gap-detection latency (origin stamp → verdict),
    /// recorded only for origin-stamped reports (wire v2 frames). A local
    /// histogram rather than the global `veridp_gap_detect_ns` alone so each
    /// run/shard owns an isolated distribution (the global registry is
    /// process-wide and shared across concurrent pipelines). Excluded from
    /// equality: two runs with identical verdict counts compare equal even
    /// though their latencies never will.
    pub gap_detect: obs::LocalHistogram,
}

/// Equality over the verdict/accounting counters only; the latency
/// histogram is observability payload, not identity (and timestamps are
/// never bit-reproducible across runs).
impl PartialEq for ServerStats {
    fn eq(&self, other: &Self) -> bool {
        self.reports == other.reports
            && self.passed == other.passed
            && self.tag_mismatch == other.tag_mismatch
            && self.no_matching_path == other.no_matching_path
            && self.localizations == other.localizations
            && self.localized == other.localized
            && self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
            && self.duplicates == other.duplicates
            && self.graced == other.graced
            && self.quarantined == other.quarantined
            && self.shed == other.shed
    }
}

impl Eq for ServerStats {}

impl ServerStats {
    /// Failed verifications.
    pub fn failed(&self) -> u64 {
        self.tag_mismatch + self.no_matching_path
    }

    /// Fold another stats block into this one, field-wise. This is the one
    /// place stats aggregation is defined: batch ingest folds worker
    /// summaries through it, and it is associative — merging shards in any
    /// grouping yields the same totals (the unit suite asserts it).
    pub fn merge(&mut self, other: &ServerStats) {
        self.reports += other.reports;
        self.passed += other.passed;
        self.tag_mismatch += other.tag_mismatch;
        self.no_matching_path += other.no_matching_path;
        self.localizations += other.localizations;
        self.localized += other.localized;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.duplicates += other.duplicates;
        self.graced += other.graced;
        self.quarantined += other.quarantined;
        self.shed += other.shed;
        self.gap_detect.merge(&other.gap_detect);
    }

    /// The verdict/localization counters alone, excluding the cache
    /// counters: a fast-path server and a plain server processing the same
    /// report stream must agree exactly on these (the differential suite
    /// asserts it), while their cache counters differ by design.
    pub fn verdict_counts(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.reports,
            self.passed,
            self.tag_mismatch,
            self.no_matching_path,
            self.localizations,
            self.localized,
        )
    }

    /// Fraction of verdicts served from the verdict cache.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl From<&BatchSummary> for ServerStats {
    /// A batch summary viewed as a stats block (no localization runs in the
    /// batch pipeline, so those counters are zero), ready for
    /// [`ServerStats::merge`].
    fn from(s: &BatchSummary) -> Self {
        ServerStats {
            reports: s.total as u64,
            passed: s.passed as u64,
            tag_mismatch: s.tag_mismatch as u64,
            no_matching_path: s.no_matching_path as u64,
            localizations: 0,
            localized: 0,
            cache_hits: s.cache_hits as u64,
            cache_misses: s.cache_misses as u64,
            gap_detect: s.gap_detect.clone(),
            ..ServerStats::default()
        }
    }
}

/// The verification server.
///
/// Owns the header-set backend, the path table, and the statistics.
/// Construction takes the controller's logical rules; afterwards the server
/// stays in sync by watching the same FlowMods the switches receive
/// ([`VeriDpServer::intercept`]). Generic over the header-set backend, with
/// the BDD [`HeaderSpace`] as the default.
pub struct VeriDpServer<B: HeaderSetBackend = HeaderSpace> {
    hs: B,
    table: PathTable<B>,
    /// The verification fast path (tag index + verdict cache), when enabled
    /// via [`VeriDpServer::set_fastpath`]. Verdicts are identical either
    /// way; only throughput differs.
    fastpath: Option<VerifyFastPath>,
    /// Robust ingest state (dedup + quarantine + confirmed alarms), when
    /// enabled via [`VeriDpServer::set_robust`].
    robust: Option<RobustState>,
    /// RCU-style snapshot publication ([`crate::snapshot`]), when enabled
    /// via [`VeriDpServer::set_snapshots`]: every intercepted rule change is
    /// recorded and republished, and the verify paths pin a version per
    /// batch/report — identical verdicts (the published epoch always equals
    /// the master's), but external reader threads run wait-free under churn.
    snapshots: Option<SnapshotLayer<B>>,
    stats: ServerStats,
    /// Count of localization candidates per switch, for operator dashboards.
    suspects: HashMap<SwitchId, u64>,
}

impl VeriDpServer<HeaderSpace> {
    /// Build the server from a topology and per-switch logical rules, on
    /// the default BDD backend. (Use [`VeriDpServer::with_backend`] to pick
    /// a different header-set representation.)
    pub fn new(
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<veridp_switch::FlowRule>>,
        tag_bits: u32,
    ) -> Self {
        Self::with_backend(HeaderSpace::new(), topo, rules, tag_bits)
    }

    /// Like [`VeriDpServer::new`], but constructing the path table with the
    /// sharded parallel build on `threads` workers (semantically identical
    /// to the sequential build; see [`PathTable::build_parallel`]).
    pub fn new_parallel(
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<veridp_switch::FlowRule>>,
        tag_bits: u32,
        threads: usize,
    ) -> Self {
        Self::with_backend_parallel(HeaderSpace::new(), topo, rules, tag_bits, threads)
    }

    /// Build directly from a controller's current state.
    pub fn from_controller(ctrl: &veridp_controller::Controller, tag_bits: u32) -> Self {
        let rules: HashMap<SwitchId, Vec<veridp_switch::FlowRule>> = ctrl
            .logical_rules()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        Self::new(ctrl.topo(), &rules, tag_bits)
    }
}

impl<B: HeaderSetBackend> VeriDpServer<B> {
    /// Build the server on an explicit backend instance (`--backend atoms`
    /// wiring goes through here).
    pub fn with_backend(
        mut hs: B,
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<veridp_switch::FlowRule>>,
        tag_bits: u32,
    ) -> Self {
        let table = PathTable::build(topo, rules, &mut hs, tag_bits);
        VeriDpServer {
            hs,
            table,
            fastpath: None,
            robust: None,
            snapshots: None,
            stats: ServerStats::default(),
            suspects: HashMap::new(),
        }
    }

    /// [`VeriDpServer::with_backend`] with the sharded parallel build.
    pub fn with_backend_parallel(
        mut hs: B,
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<veridp_switch::FlowRule>>,
        tag_bits: u32,
        threads: usize,
    ) -> Self {
        let table = PathTable::build_parallel(topo, rules, &mut hs, tag_bits, threads);
        VeriDpServer {
            hs,
            table,
            fastpath: None,
            robust: None,
            snapshots: None,
            stats: ServerStats::default(),
            suspects: HashMap::new(),
        }
    }

    /// The path table.
    pub fn table(&self) -> &PathTable<B> {
        &self.table
    }

    /// The header-set backend.
    pub fn header_space(&self) -> &B {
        &self.hs
    }

    /// Mutable backend (witness generation for experiments).
    pub fn header_space_mut(&mut self) -> &mut B {
        &mut self.hs
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Mirror the running [`ServerStats`] into the global obs registry.
    ///
    /// The plain `u64` fields stay the source of truth; this publishes them
    /// as absolute values with relaxed stores ([`obs::Counter::store`]) —
    /// far cheaper than atomic increments on the per-report hot path. Called
    /// automatically whenever the running report count crosses a
    /// 1024-report boundary (single reports and batches alike); call it
    /// manually before snapshotting if exact up-to-the-report counts
    /// matter.
    pub fn publish_obs(&self) {
        publish_stats_obs(&self.stats, self.suspects.len());
    }

    /// Enable or disable the verification fast path. Enabling builds the
    /// tag index lazily on the next verification; disabling drops the index
    /// and all cached verdicts. Verdicts, localization, and every
    /// non-cache statistic are identical in both modes.
    pub fn set_fastpath(&mut self, on: bool) {
        match (on, &self.fastpath) {
            (true, None) => self.fastpath = Some(VerifyFastPath::new()),
            (false, Some(_)) => self.fastpath = None,
            _ => {}
        }
    }

    /// Whether the verification fast path is enabled.
    pub fn fastpath_enabled(&self) -> bool {
        self.fastpath.is_some()
    }

    /// Suspect counts per switch accumulated by localization.
    pub fn suspects(&self) -> &HashMap<SwitchId, u64> {
        &self.suspects
    }

    /// Watch one controller→switch message and update the path table
    /// incrementally (§4.4). Barriers are ignored. With snapshots enabled
    /// the update is also recorded and a fresh version published, so pinned
    /// readers converge within one atomic load.
    pub fn intercept(&mut self, switch: SwitchId, msg: &OfMessage) {
        let upd = match msg {
            OfMessage::FlowAdd(rule) => RuleUpdate::Add(switch, *rule),
            OfMessage::FlowDelete(id) => RuleUpdate::Delete(switch, *id),
            OfMessage::FlowModify(id, action) => RuleUpdate::Modify(switch, *id, *action),
            OfMessage::Barrier(_) => return,
        };
        upd.apply_to(&mut self.table, &mut self.hs);
        if let Some(layer) = &mut self.snapshots {
            layer.publisher.record(upd);
            layer.publisher.publish(&self.table, &self.hs);
        }
    }

    /// Enable or disable RCU-style snapshot publication ([`crate::snapshot`]).
    ///
    /// Enabling publishes a first version (a deep copy of the current table)
    /// and from then on keeps the published snapshot in lock-step with every
    /// intercepted rule change; the ingest paths pin a version per
    /// batch/report, and [`VeriDpServer::snapshot_reader`] hands out
    /// wait-free reader handles for external verify threads. Verdicts and
    /// statistics are identical with snapshots on or off (the differential
    /// suite asserts it). Published versions carry a tag index iff the fast
    /// path is enabled at the time of this call.
    pub fn set_snapshots(&mut self, on: bool) {
        match (on, &self.snapshots) {
            (true, None) => {
                self.snapshots = Some(SnapshotLayer::new(
                    &self.table,
                    &self.hs,
                    self.fastpath.is_some(),
                ))
            }
            (false, Some(_)) => self.snapshots = None,
            _ => {}
        }
    }

    /// Whether snapshot publication is enabled.
    pub fn snapshots_enabled(&self) -> bool {
        self.snapshots.is_some()
    }

    /// A wait-free reader handle onto the published snapshots, for verify
    /// threads that must keep running while this server applies churn.
    /// `None` while snapshots are disabled.
    pub fn snapshot_reader(&self) -> Option<ReaderHandle<B>> {
        self.snapshots.as_ref().map(|l| l.publisher.reader())
    }

    /// Publication counters of the snapshot layer (`None` while disabled).
    pub fn snapshot_stats(&self) -> Option<&SnapshotStats> {
        self.snapshots.as_ref().map(|l| l.publisher.stats())
    }

    /// Raw Algorithm-3 verdict (fast path when enabled, cache counters
    /// updated) without touching the verdict statistics. With snapshots
    /// enabled the verdict is computed against a pinned published version —
    /// identical outcome, since publication tracks every intercept.
    #[inline]
    fn raw_verify(&mut self, report: &TagReport) -> VerifyOutcome {
        let VeriDpServer {
            hs,
            table,
            fastpath,
            stats,
            snapshots,
            ..
        } = self;
        match snapshots {
            Some(layer) => {
                let guard = layer.reader.pin();
                Self::verdict_at(fastpath, stats, guard.table(), guard.backend(), report)
            }
            None => Self::verdict_at(fastpath, stats, table, hs, report),
        }
    }

    /// One Algorithm-3 verdict against an explicit (table, backend) view —
    /// the master or a pinned snapshot — folding cache-hit counters.
    #[inline]
    fn verdict_at(
        fastpath: &mut Option<VerifyFastPath>,
        stats: &mut ServerStats,
        table: &PathTable<B>,
        hs: &B,
        report: &TagReport,
    ) -> VerifyOutcome {
        match fastpath {
            Some(fp) => {
                let (outcome, hit) = fp.verify_flagged(table, hs, report);
                if hit {
                    stats.cache_hits += 1;
                } else {
                    stats.cache_misses += 1;
                }
                outcome
            }
            None => table.verify(report, hs),
        }
    }

    /// Fold one final verdict into the statistics (with the periodic obs
    /// publish rhythm).
    #[inline]
    fn count_verdict(&mut self, report: &TagReport, outcome: VerifyOutcome) {
        let epoch = self.table.epoch();
        record_verdict_obs(report, epoch, &mut self.stats.gap_detect);
        self.stats.reports += 1;
        match outcome {
            VerifyOutcome::Pass => self.stats.passed += 1,
            VerifyOutcome::TagMismatch => self.stats.tag_mismatch += 1,
            VerifyOutcome::NoMatchingPath => self.stats.no_matching_path += 1,
        }
        // Periodic pull-model publish: one branch per report, the stores
        // amortized over 1024 verdicts.
        if obs::ENABLED && self.stats.reports & 1023 == 0 {
            self.publish_obs();
        }
    }

    /// Verify one tag report (Algorithm 3), updating statistics. Routed
    /// through the fast path when enabled; the verdict is identical either
    /// way.
    pub fn verify(&mut self, report: &TagReport) -> VerifyOutcome {
        let outcome = self.raw_verify(report);
        self.count_verdict(report, outcome);
        outcome
    }

    /// Verify a whole batch of reports across `threads` workers and fold
    /// the counts into the server statistics — the high-throughput ingest
    /// entry point (no per-report localization; failing flows surface via
    /// the summary counts). Uses the sharded fast-path pipeline when the
    /// fast path is enabled, with one private verdict cache per worker.
    pub fn ingest_batch(&mut self, reports: &[TagReport], threads: usize) -> BatchSummary {
        let VeriDpServer {
            hs,
            table,
            fastpath,
            snapshots,
            ..
        } = self;
        let summary = match snapshots {
            Some(layer) => {
                // One pin for the whole batch: the workers read an immutable
                // version while the writer stays free to publish successors.
                let guard = layer.reader.pin();
                obs::gauge!("veridp_snapshot_age")
                    .set(table.epoch().saturating_sub(guard.table().epoch()) as i64);
                Self::batch_at(fastpath, guard.table(), guard.backend(), reports, threads)
            }
            None => Self::batch_at(fastpath, table, hs, reports, threads),
        };
        let before = self.stats.reports;
        // The workers sampled detection latency for stamped reports into
        // `summary.gap_detect` (while each report was still cache-hot);
        // the merge folds the samples into `stats.gap_detect`.
        self.stats.merge(&ServerStats::from(&summary));
        // Same 1024-report publish rhythm as single-report verify(): mirror
        // the stats whenever this batch crossed a 1024 boundary, so small
        // hot batches don't pay the store fan-out every time.
        if obs::ENABLED && before >> 10 != self.stats.reports >> 10 {
            self.publish_obs();
        }
        summary
    }

    /// One batch summary against an explicit (table, backend) view.
    fn batch_at(
        fastpath: &mut Option<VerifyFastPath>,
        table: &PathTable<B>,
        hs: &B,
        reports: &[TagReport],
        threads: usize,
    ) -> BatchSummary {
        match fastpath {
            Some(fp) => crate::parallel::verify_batch_summary_fast(table, hs, fp, reports, threads),
            None => crate::parallel::verify_batch_summary(table, hs, reports, threads),
        }
    }

    /// Verify, and on failure localize (Algorithm 4). Returns the verdict
    /// and, for failures, the localization outcome.
    pub fn verify_and_localize(
        &mut self,
        report: &TagReport,
    ) -> (VerifyOutcome, Option<LocalizeOutcome>) {
        let outcome = self.verify(report);
        if outcome.is_pass() {
            return (outcome, None);
        }
        let loc = self.table.localize(report, &self.hs);
        self.stats.localizations += 1;
        if !loc.candidates.is_empty() {
            self.stats.localized += 1;
        }
        for c in &loc.candidates {
            *self.suspects.entry(c.faulty_switch).or_default() += 1;
        }
        obs::event!(
            "localization",
            "{outcome:?} for flow entering {:?}: {} candidate switch(es)",
            report.inport,
            loc.candidates.len()
        );
        (outcome, Some(loc))
    }

    // ---- Robust ingest: dedup + epoch grace + quarantine + confirmation ----

    /// Enable (with `Some(config)`) or disable (`None`) the robust ingest
    /// path. Enabling sizes the table's epoch-grace ring from the config and
    /// resets the dedup filter, quarantine, and confirmed-alarm state.
    pub fn set_robust(&mut self, config: Option<RobustConfig>) {
        match config {
            Some(cfg) => {
                self.table.set_grace_depth(cfg.grace_depth);
                self.robust = Some(RobustState::new(cfg));
                // Published versions carry their own retired rings; rebuild
                // the layer so every future version adopts the new depth.
                if self.snapshots.is_some() {
                    self.snapshots = Some(SnapshotLayer::new(
                        &self.table,
                        &self.hs,
                        self.fastpath.is_some(),
                    ));
                }
            }
            None => self.robust = None,
        }
    }

    /// Robust ingest state, when enabled (confirmed alarms live here).
    pub fn robust(&self) -> Option<&RobustState> {
        self.robust.as_ref()
    }

    /// Mutable robust ingest state.
    pub fn robust_mut(&mut self) -> Option<&mut RobustState> {
        self.robust.as_mut()
    }

    /// Ingest one report through the hardened pipeline: duplicate filter,
    /// Algorithm-3 verdict, epoch grace for update races, quarantine for
    /// unexplained old-epoch failures, localization + K-of-N alarm
    /// confirmation for genuine current-epoch failures.
    ///
    /// With no update in flight (report epoch == table epoch, no duplicate
    /// frames) every report takes the plain `verify`+localize path and the
    /// verdict statistics are bit-identical to [`VeriDpServer::verify`] /
    /// [`VeriDpServer::verify_and_localize`].
    ///
    /// # Panics
    /// Panics if robust mode is not enabled ([`VeriDpServer::set_robust`]).
    pub fn ingest_robust(&mut self, report: &TagReport) -> Disposition {
        let mut robust = self
            .robust
            .take()
            .expect("ingest_robust requires set_robust(Some(..))");
        let VeriDpServer {
            hs,
            table,
            fastpath,
            snapshots,
            stats,
            suspects,
            ..
        } = self;
        // One pinned view per report: under lock-step publication the
        // latest published version *is* the master state, so every check
        // (verdict, epoch compare, grace, localization) reads the same
        // world the master-path branch does.
        let disposition = match snapshots {
            Some(layer) => {
                let guard = layer.reader.pin();
                obs::gauge!("veridp_snapshot_age")
                    .set(table.epoch().saturating_sub(guard.table().epoch()) as i64);
                RobustCtx {
                    table: guard.table(),
                    hs: guard.backend(),
                    fastpath,
                    stats,
                    suspects,
                    mirror_obs: true,
                }
                .step(&mut robust, report)
            }
            None => RobustCtx {
                table,
                hs,
                fastpath,
                stats,
                suspects,
                mirror_obs: true,
            }
            .step(&mut robust, report),
        };
        self.robust = Some(robust);
        disposition
    }

    /// Drain the quarantine once updates have settled, re-verifying each
    /// held report (with grace) and landing final verdicts in the
    /// statistics and alarm aggregator. No-op outside robust mode.
    pub fn settle(&mut self) {
        let Some(mut robust) = self.robust.take() else {
            return;
        };
        let VeriDpServer {
            hs,
            table,
            fastpath,
            snapshots,
            stats,
            suspects,
            ..
        } = self;
        match snapshots {
            Some(layer) => {
                let guard = layer.reader.pin();
                RobustCtx {
                    table: guard.table(),
                    hs: guard.backend(),
                    fastpath,
                    stats,
                    suspects,
                    mirror_obs: true,
                }
                .settle(&mut robust)
            }
            None => RobustCtx {
                table,
                hs,
                fastpath,
                stats,
                suspects,
                mirror_obs: true,
            }
            .settle(&mut robust),
        }
        self.robust = Some(robust);
    }

    /// A sharded robust-verify worker over this server's published
    /// snapshots: its own dedup filter, quarantine, alarm aggregator,
    /// statistics, and (when the fast path is on here) a private verdict
    /// cache, all driven by the exact step logic
    /// [`VeriDpServer::ingest_robust`] runs.
    ///
    /// Workers exist so a network pipeline can run the robust path on N
    /// threads without locking the server: reports are partitioned by
    /// [`TagReport::shard`] (the `(inport, outport)` pair), and because the
    /// dedup filter, quarantine resolution, and alarm confirmation are all
    /// pair-keyed, shard-local state loses nothing — every duplicate and
    /// every supporting failure for a given pair lands on the same worker.
    /// The one documented divergence: K-of-N confirmation windows count
    /// per-shard failing observations, so a suspect implicated by several
    /// *pairs* confirms per pair-shard rather than against the global
    /// failure sequence.
    ///
    /// Returns `None` unless both snapshots and robust mode are enabled.
    pub fn robust_worker(&self) -> Option<RobustWorker<B>> {
        let reader = self.snapshot_reader()?;
        let config = self.robust.as_ref()?.config.clone();
        Some(RobustWorker {
            reader,
            fastpath: self.fastpath.is_some().then(VerifyFastPath::new),
            state: RobustState::new(config),
            stats: ServerStats::default(),
            suspects: HashMap::new(),
        })
    }

    /// Fold a finished worker's harvest back into this server: statistics
    /// merge field-wise ([`ServerStats::merge`] is associative), suspect
    /// counts add, and the worker's alarms — confirmed and pending — merge
    /// into the server's aggregator ([`AlarmAggregator::absorb`]). Requires
    /// robust mode for the alarm merge; stats and suspects fold regardless.
    pub fn absorb(&mut self, harvest: RobustHarvest) {
        self.stats.merge(&harvest.stats);
        for (s, n) in harvest.suspects {
            *self.suspects.entry(s).or_default() += n;
        }
        if let Some(robust) = &mut self.robust {
            robust.alarms.absorb(harvest.alarms);
        }
        self.publish_obs();
    }
}

/// One immutable verification view — the master state or a pinned snapshot
/// — plus the mutable sinks the robust pipeline folds into. The server's
/// own `ingest_robust`/`settle` and the sharded [`RobustWorker`]s all drive
/// this same step logic, which is what keeps wire-path verdicts
/// bit-identical to in-process ones.
struct RobustCtx<'a, B: HeaderSetBackend> {
    table: &'a PathTable<B>,
    hs: &'a B,
    fastpath: &'a mut Option<VerifyFastPath>,
    stats: &'a mut ServerStats,
    suspects: &'a mut HashMap<SwitchId, u64>,
    /// Mirror absolute stats into the global obs registry on the
    /// 1024-report rhythm and keep the quarantine gauge fresh. On for the
    /// single-owner server paths; off for sharded workers, whose absolute
    /// stores would clobber each other (their totals reach obs when the
    /// server absorbs the harvest).
    mirror_obs: bool,
}

impl<B: HeaderSetBackend> RobustCtx<'_, B> {
    /// The full robust disposition of one report against this view.
    fn step(&mut self, robust: &mut RobustState, report: &TagReport) -> Disposition {
        if !robust.filter.insert(report) {
            self.stats.duplicates += 1;
            obs::counter!("veridp_robust_duplicates_total").inc();
            return Disposition::Duplicate;
        }
        let outcome =
            VeriDpServer::verdict_at(self.fastpath, self.stats, self.table, self.hs, report);
        if outcome.is_pass() {
            self.count_verdict(report, outcome);
            return Disposition::Passed;
        }
        if report.epoch < self.table.epoch() {
            // The report predates the table: an update raced it.
            if self.table.grace_check(report, self.hs) {
                self.stats.graced += 1;
                self.count_verdict(report, VerifyOutcome::Pass);
                return Disposition::Graced;
            }
            // Grace cannot explain it, but the trajectory may have mixed
            // epochs mid-path; hold the verdict until updates settle.
            self.stats.quarantined += 1;
            obs::counter!("veridp_robust_quarantined_total").inc();
            robust.quarantine.push_back(*report);
            if robust.quarantine.len() > robust.config.quarantine_capacity {
                if let Some(old) = robust.quarantine.pop_front() {
                    self.stats.shed += 1;
                    obs::counter!("veridp_robust_shed_total").inc();
                    self.resolve_final(&old, &mut robust.alarms);
                }
            }
            if self.mirror_obs {
                obs::gauge!("veridp_robust_quarantine_len").set(robust.quarantine.len() as i64);
            }
            return Disposition::Quarantined;
        }
        // Sampled against the live table and still failing: a real fault.
        self.finalize_failure(report, outcome, &mut robust.alarms);
        Disposition::Failed
    }

    /// Drain the quarantine through grace-aware re-verification.
    fn settle(&mut self, robust: &mut RobustState) {
        while let Some(report) = robust.quarantine.pop_front() {
            self.resolve_final(&report, &mut robust.alarms);
        }
        if self.mirror_obs {
            obs::gauge!("veridp_robust_quarantine_len").set(0);
        }
    }

    /// Final resolution of a quarantined report: re-verify against the
    /// now-settled view, grace what an update retired, fail the rest.
    fn resolve_final(&mut self, report: &TagReport, alarms: &mut AlarmAggregator) {
        let outcome =
            VeriDpServer::verdict_at(self.fastpath, self.stats, self.table, self.hs, report);
        if outcome.is_pass() {
            self.count_verdict(report, outcome);
            return;
        }
        if self.table.grace_check(report, self.hs) {
            self.stats.graced += 1;
            self.count_verdict(report, VerifyOutcome::Pass);
            return;
        }
        self.finalize_failure(report, outcome, alarms);
    }

    /// A failure that survived every forgiveness layer: count it, localize
    /// it, and feed the alarm aggregator.
    fn finalize_failure(
        &mut self,
        report: &TagReport,
        outcome: VerifyOutcome,
        alarms: &mut AlarmAggregator,
    ) {
        self.count_verdict(report, outcome);
        let loc = self.table.localize(report, self.hs);
        self.stats.localizations += 1;
        if !loc.candidates.is_empty() {
            self.stats.localized += 1;
        }
        for c in &loc.candidates {
            *self.suspects.entry(c.faulty_switch).or_default() += 1;
        }
        alarms.observe(report, &outcome, Some(&loc));
    }

    /// Fold one final verdict in, mirroring to obs on the same 1024-report
    /// rhythm [`VeriDpServer::count_verdict`] uses (when enabled).
    fn count_verdict(&mut self, report: &TagReport, outcome: VerifyOutcome) {
        record_verdict_obs(report, self.table.epoch(), &mut self.stats.gap_detect);
        self.stats.reports += 1;
        match outcome {
            VerifyOutcome::Pass => self.stats.passed += 1,
            VerifyOutcome::TagMismatch => self.stats.tag_mismatch += 1,
            VerifyOutcome::NoMatchingPath => self.stats.no_matching_path += 1,
        }
        if self.mirror_obs && obs::ENABLED && self.stats.reports & 1023 == 0 {
            publish_stats_obs(self.stats, self.suspects.len());
        }
    }
}

/// A sharded robust-verify worker: one pinned-snapshot reader plus
/// shard-local robust state (see [`VeriDpServer::robust_worker`] for the
/// partitioning contract that makes shard-local state lossless).
///
/// The worker is `Send` — built on one thread, driven on another — and
/// wait-free with respect to the server: batches pin a published version,
/// never a lock the intercept path holds.
pub struct RobustWorker<B: HeaderSetBackend = HeaderSpace> {
    reader: ReaderHandle<B>,
    fastpath: Option<VerifyFastPath>,
    state: RobustState,
    stats: ServerStats,
    suspects: HashMap<SwitchId, u64>,
}

impl<B: HeaderSetBackend> RobustWorker<B> {
    /// Robust-ingest one report (pins a snapshot for the single step).
    pub fn ingest(&mut self, report: &TagReport) -> Disposition {
        let mut last = Disposition::Passed;
        self.ingest_batch_with(std::slice::from_ref(report), |d| last = d);
        last
    }

    /// Robust-ingest a batch under one snapshot pin — the wire-path entry
    /// point. Every report in the batch sees the same immutable version;
    /// the publisher stays free to publish successors concurrently.
    pub fn ingest_batch(&mut self, reports: &[TagReport]) {
        self.ingest_batch_with(reports, |_| {});
    }

    /// [`RobustWorker::ingest_batch`] with a per-report disposition
    /// observer, for callers that track dispositions without re-deriving
    /// them from stats deltas.
    pub fn ingest_batch_with(
        &mut self,
        reports: &[TagReport],
        mut observe: impl FnMut(Disposition),
    ) {
        let RobustWorker {
            reader,
            fastpath,
            state,
            stats,
            suspects,
        } = self;
        let guard = reader.pin();
        let mut ctx = RobustCtx {
            table: guard.table(),
            hs: guard.backend(),
            fastpath,
            stats,
            suspects,
            mirror_obs: false,
        };
        for r in reports {
            observe(ctx.step(state, r));
        }
    }

    /// Drain this shard's quarantine against the latest published version.
    pub fn settle(&mut self) {
        let RobustWorker {
            reader,
            fastpath,
            state,
            stats,
            suspects,
        } = self;
        let guard = reader.pin();
        RobustCtx {
            table: guard.table(),
            hs: guard.backend(),
            fastpath,
            stats,
            suspects,
            mirror_obs: false,
        }
        .settle(state);
    }

    /// This shard's running statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// This shard's alarm aggregator (confirmed alarms live here until
    /// harvest).
    pub fn alarms(&self) -> &AlarmAggregator {
        &self.state.alarms
    }

    /// Label this shard's flight-recorder events with its shard index, so
    /// dumps assembled after [`VeriDpServer::absorb`] say which worker saw
    /// each event.
    pub fn set_shard(&mut self, shard: usize) {
        self.state.alarms.set_shard(shard);
    }

    /// Reports currently quarantined on this shard.
    pub fn quarantine_len(&self) -> usize {
        self.state.quarantine_len()
    }

    /// Settle and consume the worker, yielding everything the server needs
    /// to fold the shard back in ([`VeriDpServer::absorb`]).
    pub fn harvest(mut self) -> RobustHarvest {
        self.settle();
        RobustHarvest {
            stats: self.stats,
            suspects: self.suspects,
            alarms: self.state.alarms,
        }
    }
}

/// Everything a finished [`RobustWorker`] hands back: the shard's verdict
/// statistics, localization suspect counts, and alarm state.
pub struct RobustHarvest {
    pub stats: ServerStats,
    pub suspects: HashMap<SwitchId, u64>,
    pub alarms: AlarmAggregator,
}

/// Stamp deltas beyond this (one hour) are implausible — a report stamped
/// by a different machine's monotonic clock, or a corrupted stamp that
/// slipped the wire checksum — and are counted instead of recorded, so one
/// garbage stamp cannot stretch the latency histograms across decades.
const GAP_STAMP_PLAUSIBLE_NS: u64 = 3_600_000_000_000;

/// Per-verdict telemetry, shared by every final-verdict site: the
/// end-to-end gap-detection latency (origin stamp → verdict, stamped wire
/// reports only) into both the global `veridp_gap_detect_ns` histogram and
/// the run-local one, plus the `veridp_epoch_lag` gauge. `table_epoch` is
/// the epoch of the view the verdict was computed against.
#[inline]
fn record_verdict_obs(report: &TagReport, table_epoch: u64, gap: &mut obs::LocalHistogram) {
    // Unstamped reports (in-process ingest, v1 frames) exit after two plain
    // compares, before any clock is read — the telemetry below is priced
    // for wire reports only.
    if !obs::ENABLED || report.origin_ns == 0 {
        return;
    }
    if let Some(delta) = record_gap_at(report, table_epoch, obs::monotonic_ns(), gap) {
        obs::histogram!("veridp_gap_detect_ns").record(delta);
    }
}

/// Worker-side core of [`record_verdict_obs`]: `now_ns` is supplied by the
/// caller (the batch folds reuse the clock read their verify-latency
/// sample already paid for), the sample lands in the caller's
/// [`obs::LocalHistogram`] only, and the recorded delta is returned so
/// single-report callers can mirror it into the global histogram. Batch
/// workers instead merge their local histogram into the global one once
/// per batch — one round of atomic traffic per batch, not per report.
#[inline]
pub(crate) fn record_gap_at(
    report: &TagReport,
    table_epoch: u64,
    now_ns: u64,
    gap: &mut obs::LocalHistogram,
) -> Option<u64> {
    if !obs::ENABLED || report.origin_ns == 0 {
        return None;
    }
    if report.epoch != 0 && report.epoch <= table_epoch {
        obs::gauge!("veridp_epoch_lag").set((table_epoch - report.epoch) as i64);
    }
    let delta = now_ns.saturating_sub(report.origin_ns).max(1);
    if delta > GAP_STAMP_PLAUSIBLE_NS {
        obs::counter!("veridp_gap_stamp_implausible_total").inc();
        return None;
    }
    gap.record(delta);
    Some(delta)
}

/// Mirror a stats block into the global obs registry as absolute stores —
/// the shared body of [`VeriDpServer::publish_obs`] and the ctx rhythm.
fn publish_stats_obs(stats: &ServerStats, suspect_switches: usize) {
    if !obs::ENABLED {
        return;
    }
    obs::counter!("veridp_server_reports_total").store(stats.reports);
    obs::counter!("veridp_server_passed_total").store(stats.passed);
    obs::counter!("veridp_server_tag_mismatch_total").store(stats.tag_mismatch);
    obs::counter!("veridp_server_no_matching_path_total").store(stats.no_matching_path);
    obs::counter!("veridp_server_localizations_total").store(stats.localizations);
    obs::counter!("veridp_server_localized_total").store(stats.localized);
    obs::counter!("veridp_server_cache_hits_total").store(stats.cache_hits);
    obs::counter!("veridp_server_cache_misses_total").store(stats.cache_misses);
    obs::counter!("veridp_server_duplicates_total").store(stats.duplicates);
    obs::counter!("veridp_server_graced_total").store(stats.graced);
    obs::counter!("veridp_server_quarantined_total").store(stats.quarantined);
    obs::counter!("veridp_server_shed_total").store(stats.shed);
    obs::gauge!("veridp_server_suspect_switches").set(suspect_switches as i64);
}

/// One aggregated alarm: every failed report for the same flow and entry
/// point collapses into one operator-facing item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// Entry port of the affected flow.
    pub inport: veridp_packet::PortRef,
    /// The flow header (first observed witness).
    pub header: veridp_packet::FiveTuple,
    /// Failed reports aggregated into this alarm.
    pub count: u64,
    /// Suspect switches across those failures, with candidate counts.
    pub suspects: Vec<(SwitchId, u64)>,
}

/// A confirmed alarm: a `(pair, suspect)` that accumulated at least K
/// distinct failing observations within the sliding confirmation window —
/// evidence strong enough to page an operator or trigger repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfirmedAlarm {
    /// The `(inport, outport)` pair whose reports implicated the suspect.
    pub pair: (veridp_packet::PortRef, veridp_packet::PortRef),
    /// The implicated switch.
    pub suspect: SwitchId,
    /// Total failing observations supporting the confirmation so far.
    pub count: u64,
}

/// One retained verification event in the alarm flight recorder: enough to
/// reconstruct what a pair's reports looked like in the run-up to a
/// confirmed alarm without storing the full report stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// The aggregator's failing-observation sequence number when recorded.
    pub seq: u64,
    /// Epoch the report was stamped with.
    pub epoch: u64,
    /// Raw Bloom-tag bits / width carried by the report.
    pub tag_bits: u64,
    pub tag_nbits: u32,
    /// Shard that processed the report (0 for the unsharded server path).
    pub shard: usize,
    /// Final verdict, as a stable lowercase token.
    pub verdict: &'static str,
    /// Origin-stamp-to-observation latency in nanoseconds (0 when the
    /// report carried no stamp).
    pub latency_ns: u64,
}

/// A frozen flight-recorder dump: the retained event ring for a pair at the
/// moment one of its alarms reached K-of-N confirmation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// The `(inport, outport)` pair whose ring was frozen.
    pub pair: (veridp_packet::PortRef, veridp_packet::PortRef),
    /// The confirmed suspect switch.
    pub suspect: SwitchId,
    /// Supporting failing observations at confirmation time.
    pub count: u64,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Render the dump as one self-describing JSON document (hand-rolled,
    /// matching the workspace's zero-dependency JSON idiom).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + self.events.len() * 96);
        let port = |p: &veridp_packet::PortRef| format!("\"{}:{}\"", p.switch.0, p.port.0);
        let _ = write!(
            out,
            "{{\"pair\":{{\"in\":{},\"out\":{}}},\"suspect_switch\":{},\"count\":{},\"events\":[",
            port(&self.pair.0),
            port(&self.pair.1),
            self.suspect.0,
            self.count
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"epoch\":{},\"tag\":\"{:#x}/{}\",\"shard\":{},\
                 \"verdict\":\"{}\",\"latency_ns\":{}}}",
                e.seq, e.epoch, e.tag_bits, e.tag_nbits, e.shard, e.verdict, e.latency_ns
            );
        }
        out.push_str("]}");
        out
    }
}

/// Pending confirmation support for one `(pair, suspect)`: the sliding
/// window of implicating sequence numbers plus the timestamp of the first
/// implication, which anchors the confirmation-latency histogram.
#[derive(Debug)]
struct SupportWindow {
    seqs: VecDeque<u64>,
    /// Origin stamp of the first implicating report (falling back to the
    /// local monotonic clock for unstamped reports; 0 when obs is compiled
    /// out, which disables the latency sample).
    first_ns: u64,
}

/// Events retained per pair in the flight recorder.
const FLIGHT_RING_EVENTS: usize = 16;
/// Pairs the flight recorder tracks at most; beyond this, new pairs are not
/// recorded (existing rings keep rolling) so a pathological workload cannot
/// grow the recorder without bound.
const FLIGHT_MAX_PAIRS: usize = 512;

/// Aggregates failed verifications into per-flow alarms so a persistent
/// fault raises one escalating alarm instead of one alert per sampled
/// packet.
///
/// Two robustness layers (Burdonov et al.'s confirm-before-repair
/// principle) sit on top of the aggregation:
///
/// * **Duplicate suppression** — an identical failing report (same pair,
///   header, tag, and epoch) observed twice bumps nothing twice; the
///   transport duplicates frames, not evidence.
/// * **K-of-N confirmation** — a `(pair, suspect)` alarm is only *confirmed*
///   once `confirm_k` distinct failing observations implicate it within the
///   last `confirm_window` failing observations network-wide. A flipped
///   Bloom bit that slips the wire checksum produces one isolated failure
///   (usually with no localization candidates at all) and never confirms; a
///   faulty switch keeps failing and crosses K quickly.
#[derive(Debug)]
pub struct AlarmAggregator {
    alarms: HashMap<(veridp_packet::PortRef, veridp_packet::FiveTuple), Alarm>,
    /// Exact bounded dedup over failing reports.
    recent: crate::robust::RecentFilter,
    confirm_k: u64,
    confirm_window: u64,
    /// Monotone counter of non-duplicate failing observations.
    seq: u64,
    /// Per-`(pair, suspect)` recent supporting observation sequence numbers
    /// (pruned to the sliding window) plus the first-implication timestamp.
    support: HashMap<((veridp_packet::PortRef, veridp_packet::PortRef), SwitchId), SupportWindow>,
    /// Confirmed `(pair, suspect)`s with their total supporting counts.
    confirmed: HashMap<((veridp_packet::PortRef, veridp_packet::PortRef), SwitchId), u64>,
    /// Flight recorder: per-pair bounded ring of recent failing
    /// observations, frozen into `dumps` when an alarm confirms.
    flight: HashMap<(veridp_packet::PortRef, veridp_packet::PortRef), VecDeque<FlightEvent>>,
    /// Frozen flight-recorder dumps, in confirmation order.
    dumps: Vec<FlightDump>,
    /// Stale-reporter alarms raised by the liveness registry
    /// ([`crate::liveness`]): reporters whose *silence* — not whose reports
    /// — implicates them. Kept beside the report-driven alarms so one
    /// aggregator holds the operator's complete picture.
    stale: Vec<crate::liveness::StaleReporter>,
    /// Shard label stamped into recorded events (0 for the unsharded
    /// server; workers set their shard index via [`RobustWorker::set_shard`]).
    shard: usize,
}

/// Dedup horizon for failing reports; only needs to cover the transport's
/// duplication window.
const ALARM_DEDUP_CAPACITY: usize = 4096;

impl Default for AlarmAggregator {
    fn default() -> Self {
        // K=3 within a 256-failure window: small enough to confirm a real
        // fault after a handful of sampled packets, large enough that
        // isolated corruption artifacts never confirm.
        Self::with_confirmation(3, 256)
    }
}

impl AlarmAggregator {
    /// A fresh aggregator with default confirmation tuning (K=3, N=256).
    pub fn new() -> Self {
        Self::default()
    }

    /// An aggregator confirming after `k` supporting failures within a
    /// sliding window of `window` failing observations. `k = 1` confirms on
    /// first implication; `window` is clamped to at least `k`.
    pub fn with_confirmation(k: u64, window: u64) -> Self {
        AlarmAggregator {
            alarms: HashMap::new(),
            recent: crate::robust::RecentFilter::new(ALARM_DEDUP_CAPACITY),
            confirm_k: k.max(1),
            confirm_window: window.max(k.max(1)),
            seq: 0,
            support: HashMap::new(),
            confirmed: HashMap::new(),
            flight: HashMap::new(),
            dumps: Vec::new(),
            stale: Vec::new(),
            shard: 0,
        }
    }

    /// Label events recorded from here on with `shard` (sharded pipelines
    /// call this once per worker so dumps say which shard saw what).
    pub fn set_shard(&mut self, shard: usize) {
        self.shard = shard;
    }

    /// Fold one verdict in; only failures create or update alarms.
    /// Duplicate failing reports (same pair, header, tag, epoch) within the
    /// dedup window are counted once.
    pub fn observe(
        &mut self,
        report: &TagReport,
        outcome: &crate::verify::VerifyOutcome,
        localization: Option<&LocalizeOutcome>,
    ) {
        if outcome.is_pass() {
            return;
        }
        if !self.recent.insert(report) {
            obs::counter!("veridp_alarm_duplicates_total").inc();
            return;
        }
        obs::counter!("veridp_alarm_observations_total").inc();
        self.seq += 1;
        if obs::ENABLED {
            let pair = (report.inport, report.outport);
            if self.flight.len() < FLIGHT_MAX_PAIRS || self.flight.contains_key(&pair) {
                let latency_ns = if report.origin_ns != 0 {
                    obs::monotonic_ns().saturating_sub(report.origin_ns)
                } else {
                    0
                };
                let ring = self.flight.entry(pair).or_default();
                if ring.len() == FLIGHT_RING_EVENTS {
                    ring.pop_front();
                }
                ring.push_back(FlightEvent {
                    seq: self.seq,
                    epoch: report.epoch,
                    tag_bits: report.tag.bits(),
                    tag_nbits: report.tag.nbits(),
                    shard: self.shard,
                    verdict: match outcome {
                        crate::verify::VerifyOutcome::Pass => "pass",
                        crate::verify::VerifyOutcome::TagMismatch => "tag_mismatch",
                        crate::verify::VerifyOutcome::NoMatchingPath => "no_matching_path",
                    },
                    latency_ns,
                });
            }
        }
        let key = (report.inport, report.header);
        let is_new = !self.alarms.contains_key(&key);
        if is_new {
            obs::event!(
                "alarm_raised",
                "new alarm ({outcome:?}) for flow entering {:?}",
                report.inport
            );
        }
        let alarm = self.alarms.entry(key).or_insert_with(|| Alarm {
            inport: report.inport,
            header: report.header,
            count: 0,
            suspects: Vec::new(),
        });
        alarm.count += 1;
        if let Some(loc) = localization {
            for c in &loc.candidates {
                match alarm
                    .suspects
                    .iter_mut()
                    .find(|(s, _)| *s == c.faulty_switch)
                {
                    Some((_, n)) => *n += 1,
                    None => alarm.suspects.push((c.faulty_switch, 1)),
                }
            }
            for c in &loc.candidates {
                self.note_support(report, c.faulty_switch);
            }
        }
    }

    /// Record one supporting observation for `(pair, suspect)` and confirm
    /// once K of the last N failing observations implicate it.
    fn note_support(&mut self, report: &TagReport, suspect: SwitchId) {
        let ckey = ((report.inport, report.outport), suspect);
        if let Some(total) = self.confirmed.get_mut(&ckey) {
            *total += 1;
            return;
        }
        let window_floor = self.seq.saturating_sub(self.confirm_window - 1);
        let w = self.support.entry(ckey).or_insert_with(|| SupportWindow {
            seqs: VecDeque::new(),
            first_ns: if report.origin_ns != 0 {
                report.origin_ns
            } else {
                obs::monotonic_ns()
            },
        });
        w.seqs.push_back(self.seq);
        while w.seqs.front().is_some_and(|&s| s < window_floor) {
            w.seqs.pop_front();
        }
        if w.seqs.len() as u64 >= self.confirm_k {
            let total = w.seqs.len() as u64;
            let first_ns = w.first_ns;
            self.support.remove(&ckey);
            self.confirmed.insert(ckey, total);
            obs::counter!("veridp_alarms_confirmed_total").inc();
            // First-failure → K-of-N-confirmed latency, anchored on the
            // first implicating report's origin stamp when it carried one.
            if first_ns != 0 {
                let delta = obs::monotonic_ns().saturating_sub(first_ns).max(1);
                if delta <= GAP_STAMP_PLAUSIBLE_NS {
                    obs::histogram!("veridp_gap_confirm_ns").record(delta);
                } else {
                    obs::counter!("veridp_gap_stamp_implausible_total").inc();
                }
            }
            // Freeze the pair's event ring into a flight-recorder dump.
            let events: Vec<FlightEvent> = self
                .flight
                .get(&ckey.0)
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default();
            let dump = FlightDump {
                pair: ckey.0,
                suspect,
                count: total,
                events,
            };
            obs::event!("flight_recorder", "{}", dump.to_json());
            self.dumps.push(dump);
            obs::event!(
                "alarm_confirmed",
                "suspect {suspect:?} confirmed for pair {:?} -> {:?} after {total} failures",
                report.inport,
                report.outport
            );
        }
    }

    /// Flight-recorder dumps frozen so far, in confirmation order.
    pub fn flight_dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Raise a stale-reporter alarm from the liveness registry. Unlike
    /// report-driven alarms these need no K-of-N confirmation — the
    /// registry already debounced (one flag per stale episode, idle pairs
    /// suppressed), and the evidence is the *absence* of reports, which
    /// cannot be corroborated by more of them.
    pub fn note_stale(&mut self, stale: crate::liveness::StaleReporter) {
        obs::counter!("veridp_liveness_stale_alarms_total").inc();
        obs::event!(
            "stale_alarm",
            "stale reporter alarm: {} (idle {}ms)",
            stale.reporter,
            stale.idle_ns / 1_000_000
        );
        self.stale.push(stale);
    }

    /// Stale-reporter alarms raised so far, in arrival order.
    pub fn stale_reporters(&self) -> &[crate::liveness::StaleReporter] {
        &self.stale
    }

    /// Active alarms, most-failures first; suspects within each alarm are
    /// ordered by candidate count (ties broken by switch id for
    /// determinism).
    pub fn alarms(&self) -> Vec<Alarm> {
        let mut v: Vec<Alarm> = self.alarms.values().cloned().collect();
        for a in &mut v {
            a.suspects.sort_by_key(|&(s, n)| (std::cmp::Reverse(n), s));
        }
        v.sort_by_key(|a| {
            (
                std::cmp::Reverse(a.count),
                a.inport,
                (
                    a.header.src_ip,
                    a.header.dst_ip,
                    a.header.proto,
                    a.header.src_port,
                    a.header.dst_port,
                ),
            )
        });
        v
    }

    /// Confirmed alarms in deterministic order (most-supported first, ties
    /// by suspect then pair).
    pub fn confirmed(&self) -> Vec<ConfirmedAlarm> {
        let mut v: Vec<ConfirmedAlarm> = self
            .confirmed
            .iter()
            .map(|(&(pair, suspect), &count)| ConfirmedAlarm {
                pair,
                suspect,
                count,
            })
            .collect();
        v.sort_by_key(|c| (std::cmp::Reverse(c.count), c.suspect, c.pair));
        v
    }

    /// Switches with at least one confirmed alarm, deduplicated and sorted.
    pub fn confirmed_suspects(&self) -> Vec<SwitchId> {
        let mut v: Vec<SwitchId> = self.confirmed.keys().map(|&(_, s)| s).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Number of distinct flows currently alarming.
    pub fn len(&self) -> usize {
        self.alarms.len()
    }

    /// Whether no alarms are active.
    pub fn is_empty(&self) -> bool {
        self.alarms.is_empty()
    }

    /// Merge another aggregator (a finished shard's) into this one.
    ///
    /// Per-flow alarms add their counts and suspect tallies; confirmed
    /// `(pair, suspect)`s add their supporting counts (confirming here if
    /// the other side confirmed); the failing-observation sequence counters
    /// add so future windows keep advancing. What does *not* transfer is
    /// the other side's pending (unconfirmed) window support: sequence
    /// numbers are aggregator-local, so partial support cannot be aligned
    /// across shards — confirmation is per-shard by design, which the
    /// pair-sharding contract makes sound (all support for a given pair
    /// accumulates on one shard; see [`VeriDpServer::robust_worker`]).
    pub fn absorb(&mut self, other: AlarmAggregator) {
        for (key, alarm) in other.alarms {
            match self.alarms.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(alarm);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    mine.count += alarm.count;
                    for (s, n) in alarm.suspects {
                        match mine.suspects.iter_mut().find(|(ms, _)| *ms == s) {
                            Some((_, mn)) => *mn += n,
                            None => mine.suspects.push((s, n)),
                        }
                    }
                }
            }
        }
        self.seq += other.seq;
        for (ckey, count) in other.confirmed {
            // A confirmation anywhere is a confirmation here; any pending
            // local support for the same key is subsumed by it.
            self.support.remove(&ckey);
            *self.confirmed.entry(ckey).or_insert(0) += count;
        }
        // Pair-sharding means rings never overlap across shards; append any
        // the bound allows and carry every frozen dump over verbatim.
        for (pair, ring) in other.flight {
            if self.flight.len() < FLIGHT_MAX_PAIRS || self.flight.contains_key(&pair) {
                let mine = self.flight.entry(pair).or_default();
                for e in ring {
                    if mine.len() == FLIGHT_RING_EVENTS {
                        mine.pop_front();
                    }
                    mine.push_back(e);
                }
            }
        }
        self.dumps.extend(other.dumps);
        self.stale.extend(other.stale);
    }

    /// Clear all alarm state, including confirmations (e.g. after a repair
    /// round).
    pub fn clear(&mut self) {
        self.alarms.clear();
        self.recent = crate::robust::RecentFilter::new(ALARM_DEDUP_CAPACITY);
        self.seq = 0;
        self.support.clear();
        self.confirmed.clear();
        self.flight.clear();
        self.dumps.clear();
        self.stale.clear();
    }
}
