//! The VeriDP server (§3.2, §3.4).
//!
//! Sits alongside the controller, intercepts the OpenFlow message stream to
//! keep its path table synchronized with the *intended* configuration, and
//! verifies tag reports arriving from exit switches. On verification failure
//! it runs fault localization and accumulates statistics.

use std::collections::HashMap;

use veridp_obs as obs;
use veridp_packet::{SwitchId, TagReport};
use veridp_switch::OfMessage;
use veridp_topo::Topology;

use crate::backend::HeaderSetBackend;
use crate::fastpath::VerifyFastPath;
use crate::headerspace::HeaderSpace;
use crate::localize::LocalizeOutcome;
use crate::parallel::BatchSummary;
use crate::path_table::PathTable;
use crate::verify::VerifyOutcome;

/// Running verification statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub reports: u64,
    pub passed: u64,
    pub tag_mismatch: u64,
    pub no_matching_path: u64,
    /// Localizations attempted / with at least one candidate path.
    pub localizations: u64,
    pub localized: u64,
    /// Verdicts answered from the fast path's verdict cache. Both cache
    /// counters stay zero while the fast path is disabled.
    pub cache_hits: u64,
    /// Verdicts that missed the cache and were computed against the path
    /// table (via the tag index).
    pub cache_misses: u64,
}

impl ServerStats {
    /// Failed verifications.
    pub fn failed(&self) -> u64 {
        self.tag_mismatch + self.no_matching_path
    }

    /// Fold another stats block into this one, field-wise. This is the one
    /// place stats aggregation is defined: batch ingest folds worker
    /// summaries through it, and it is associative — merging shards in any
    /// grouping yields the same totals (the unit suite asserts it).
    pub fn merge(&mut self, other: &ServerStats) {
        self.reports += other.reports;
        self.passed += other.passed;
        self.tag_mismatch += other.tag_mismatch;
        self.no_matching_path += other.no_matching_path;
        self.localizations += other.localizations;
        self.localized += other.localized;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// The verdict/localization counters alone, excluding the cache
    /// counters: a fast-path server and a plain server processing the same
    /// report stream must agree exactly on these (the differential suite
    /// asserts it), while their cache counters differ by design.
    pub fn verdict_counts(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.reports,
            self.passed,
            self.tag_mismatch,
            self.no_matching_path,
            self.localizations,
            self.localized,
        )
    }

    /// Fraction of verdicts served from the verdict cache.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl From<&BatchSummary> for ServerStats {
    /// A batch summary viewed as a stats block (no localization runs in the
    /// batch pipeline, so those counters are zero), ready for
    /// [`ServerStats::merge`].
    fn from(s: &BatchSummary) -> Self {
        ServerStats {
            reports: s.total as u64,
            passed: s.passed as u64,
            tag_mismatch: s.tag_mismatch as u64,
            no_matching_path: s.no_matching_path as u64,
            localizations: 0,
            localized: 0,
            cache_hits: s.cache_hits as u64,
            cache_misses: s.cache_misses as u64,
        }
    }
}

/// The verification server.
///
/// Owns the header-set backend, the path table, and the statistics.
/// Construction takes the controller's logical rules; afterwards the server
/// stays in sync by watching the same FlowMods the switches receive
/// ([`VeriDpServer::intercept`]). Generic over the header-set backend, with
/// the BDD [`HeaderSpace`] as the default.
pub struct VeriDpServer<B: HeaderSetBackend = HeaderSpace> {
    hs: B,
    table: PathTable<B>,
    /// The verification fast path (tag index + verdict cache), when enabled
    /// via [`VeriDpServer::set_fastpath`]. Verdicts are identical either
    /// way; only throughput differs.
    fastpath: Option<VerifyFastPath>,
    stats: ServerStats,
    /// Count of localization candidates per switch, for operator dashboards.
    suspects: HashMap<SwitchId, u64>,
}

impl VeriDpServer<HeaderSpace> {
    /// Build the server from a topology and per-switch logical rules, on
    /// the default BDD backend. (Use [`VeriDpServer::with_backend`] to pick
    /// a different header-set representation.)
    pub fn new(
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<veridp_switch::FlowRule>>,
        tag_bits: u32,
    ) -> Self {
        Self::with_backend(HeaderSpace::new(), topo, rules, tag_bits)
    }

    /// Like [`VeriDpServer::new`], but constructing the path table with the
    /// sharded parallel build on `threads` workers (semantically identical
    /// to the sequential build; see [`PathTable::build_parallel`]).
    pub fn new_parallel(
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<veridp_switch::FlowRule>>,
        tag_bits: u32,
        threads: usize,
    ) -> Self {
        Self::with_backend_parallel(HeaderSpace::new(), topo, rules, tag_bits, threads)
    }

    /// Build directly from a controller's current state.
    pub fn from_controller(ctrl: &veridp_controller::Controller, tag_bits: u32) -> Self {
        let rules: HashMap<SwitchId, Vec<veridp_switch::FlowRule>> = ctrl
            .logical_rules()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        Self::new(ctrl.topo(), &rules, tag_bits)
    }
}

impl<B: HeaderSetBackend> VeriDpServer<B> {
    /// Build the server on an explicit backend instance (`--backend atoms`
    /// wiring goes through here).
    pub fn with_backend(
        mut hs: B,
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<veridp_switch::FlowRule>>,
        tag_bits: u32,
    ) -> Self {
        let table = PathTable::build(topo, rules, &mut hs, tag_bits);
        VeriDpServer {
            hs,
            table,
            fastpath: None,
            stats: ServerStats::default(),
            suspects: HashMap::new(),
        }
    }

    /// [`VeriDpServer::with_backend`] with the sharded parallel build.
    pub fn with_backend_parallel(
        mut hs: B,
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<veridp_switch::FlowRule>>,
        tag_bits: u32,
        threads: usize,
    ) -> Self {
        let table = PathTable::build_parallel(topo, rules, &mut hs, tag_bits, threads);
        VeriDpServer {
            hs,
            table,
            fastpath: None,
            stats: ServerStats::default(),
            suspects: HashMap::new(),
        }
    }

    /// The path table.
    pub fn table(&self) -> &PathTable<B> {
        &self.table
    }

    /// The header-set backend.
    pub fn header_space(&self) -> &B {
        &self.hs
    }

    /// Mutable backend (witness generation for experiments).
    pub fn header_space_mut(&mut self) -> &mut B {
        &mut self.hs
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Mirror the running [`ServerStats`] into the global obs registry.
    ///
    /// The plain `u64` fields stay the source of truth; this publishes them
    /// as absolute values with relaxed stores ([`obs::Counter::store`]) —
    /// far cheaper than atomic increments on the per-report hot path. Called
    /// automatically whenever the running report count crosses a
    /// 1024-report boundary (single reports and batches alike); call it
    /// manually before snapshotting if exact up-to-the-report counts
    /// matter.
    pub fn publish_obs(&self) {
        if !obs::ENABLED {
            return;
        }
        obs::counter!("veridp_server_reports_total").store(self.stats.reports);
        obs::counter!("veridp_server_passed_total").store(self.stats.passed);
        obs::counter!("veridp_server_tag_mismatch_total").store(self.stats.tag_mismatch);
        obs::counter!("veridp_server_no_matching_path_total").store(self.stats.no_matching_path);
        obs::counter!("veridp_server_localizations_total").store(self.stats.localizations);
        obs::counter!("veridp_server_localized_total").store(self.stats.localized);
        obs::counter!("veridp_server_cache_hits_total").store(self.stats.cache_hits);
        obs::counter!("veridp_server_cache_misses_total").store(self.stats.cache_misses);
        obs::gauge!("veridp_server_suspect_switches").set(self.suspects.len() as i64);
    }

    /// Enable or disable the verification fast path. Enabling builds the
    /// tag index lazily on the next verification; disabling drops the index
    /// and all cached verdicts. Verdicts, localization, and every
    /// non-cache statistic are identical in both modes.
    pub fn set_fastpath(&mut self, on: bool) {
        match (on, &self.fastpath) {
            (true, None) => self.fastpath = Some(VerifyFastPath::new()),
            (false, Some(_)) => self.fastpath = None,
            _ => {}
        }
    }

    /// Whether the verification fast path is enabled.
    pub fn fastpath_enabled(&self) -> bool {
        self.fastpath.is_some()
    }

    /// Suspect counts per switch accumulated by localization.
    pub fn suspects(&self) -> &HashMap<SwitchId, u64> {
        &self.suspects
    }

    /// Watch one controller→switch message and update the path table
    /// incrementally (§4.4). Barriers are ignored.
    pub fn intercept(&mut self, switch: SwitchId, msg: &OfMessage) {
        match msg {
            OfMessage::FlowAdd(rule) => self.table.add_rule(switch, *rule, &mut self.hs),
            OfMessage::FlowDelete(id) => self.table.delete_rule(switch, *id, &mut self.hs),
            OfMessage::FlowModify(id, action) => {
                self.table.modify_rule(switch, *id, *action, &mut self.hs)
            }
            OfMessage::Barrier(_) => {}
        }
    }

    /// Verify one tag report (Algorithm 3), updating statistics. Routed
    /// through the fast path when enabled; the verdict is identical either
    /// way.
    pub fn verify(&mut self, report: &TagReport) -> VerifyOutcome {
        let outcome = match &mut self.fastpath {
            Some(fp) => {
                let (outcome, hit) = fp.verify_flagged(&self.table, &self.hs, report);
                if hit {
                    self.stats.cache_hits += 1;
                } else {
                    self.stats.cache_misses += 1;
                }
                outcome
            }
            None => self.table.verify(report, &self.hs),
        };
        self.stats.reports += 1;
        match outcome {
            VerifyOutcome::Pass => self.stats.passed += 1,
            VerifyOutcome::TagMismatch => self.stats.tag_mismatch += 1,
            VerifyOutcome::NoMatchingPath => self.stats.no_matching_path += 1,
        }
        // Periodic pull-model publish: one branch per report, the stores
        // amortized over 1024 verdicts.
        if obs::ENABLED && self.stats.reports & 1023 == 0 {
            self.publish_obs();
        }
        outcome
    }

    /// Verify a whole batch of reports across `threads` workers and fold
    /// the counts into the server statistics — the high-throughput ingest
    /// entry point (no per-report localization; failing flows surface via
    /// the summary counts). Uses the sharded fast-path pipeline when the
    /// fast path is enabled, with one private verdict cache per worker.
    pub fn ingest_batch(&mut self, reports: &[TagReport], threads: usize) -> BatchSummary {
        let summary = match &mut self.fastpath {
            Some(fp) => crate::parallel::verify_batch_summary_fast(
                &self.table,
                &self.hs,
                fp,
                reports,
                threads,
            ),
            None => crate::parallel::verify_batch_summary(&self.table, &self.hs, reports, threads),
        };
        let before = self.stats.reports;
        self.stats.merge(&ServerStats::from(&summary));
        // Same 1024-report publish rhythm as single-report verify(): mirror
        // the stats whenever this batch crossed a 1024 boundary, so small
        // hot batches don't pay the store fan-out every time.
        if obs::ENABLED && before >> 10 != self.stats.reports >> 10 {
            self.publish_obs();
        }
        summary
    }

    /// Verify, and on failure localize (Algorithm 4). Returns the verdict
    /// and, for failures, the localization outcome.
    pub fn verify_and_localize(
        &mut self,
        report: &TagReport,
    ) -> (VerifyOutcome, Option<LocalizeOutcome>) {
        let outcome = self.verify(report);
        if outcome.is_pass() {
            return (outcome, None);
        }
        let loc = self.table.localize(report, &self.hs);
        self.stats.localizations += 1;
        if !loc.candidates.is_empty() {
            self.stats.localized += 1;
        }
        for c in &loc.candidates {
            *self.suspects.entry(c.faulty_switch).or_default() += 1;
        }
        obs::event!(
            "localization",
            "{outcome:?} for flow entering {:?}: {} candidate switch(es)",
            report.inport,
            loc.candidates.len()
        );
        (outcome, Some(loc))
    }
}

/// One aggregated alarm: every failed report for the same flow and entry
/// point collapses into one operator-facing item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// Entry port of the affected flow.
    pub inport: veridp_packet::PortRef,
    /// The flow header (first observed witness).
    pub header: veridp_packet::FiveTuple,
    /// Failed reports aggregated into this alarm.
    pub count: u64,
    /// Suspect switches across those failures, with candidate counts.
    pub suspects: Vec<(SwitchId, u64)>,
}

/// Aggregates failed verifications into per-flow alarms so a persistent
/// fault raises one escalating alarm instead of one alert per sampled
/// packet.
#[derive(Debug, Default)]
pub struct AlarmAggregator {
    alarms: HashMap<(veridp_packet::PortRef, veridp_packet::FiveTuple), Alarm>,
}

impl AlarmAggregator {
    /// A fresh aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one verdict in; only failures create or update alarms.
    pub fn observe(
        &mut self,
        report: &TagReport,
        outcome: &crate::verify::VerifyOutcome,
        localization: Option<&LocalizeOutcome>,
    ) {
        if outcome.is_pass() {
            return;
        }
        obs::counter!("veridp_alarm_observations_total").inc();
        let key = (report.inport, report.header);
        let is_new = !self.alarms.contains_key(&key);
        if is_new {
            obs::event!(
                "alarm_raised",
                "new alarm ({outcome:?}) for flow entering {:?}",
                report.inport
            );
        }
        let alarm = self.alarms.entry(key).or_insert_with(|| Alarm {
            inport: report.inport,
            header: report.header,
            count: 0,
            suspects: Vec::new(),
        });
        alarm.count += 1;
        if let Some(loc) = localization {
            for c in &loc.candidates {
                match alarm
                    .suspects
                    .iter_mut()
                    .find(|(s, _)| *s == c.faulty_switch)
                {
                    Some((_, n)) => *n += 1,
                    None => alarm.suspects.push((c.faulty_switch, 1)),
                }
            }
        }
    }

    /// Active alarms, most-failures first; suspects within each alarm are
    /// ordered by candidate count.
    pub fn alarms(&self) -> Vec<Alarm> {
        let mut v: Vec<Alarm> = self.alarms.values().cloned().collect();
        for a in &mut v {
            a.suspects.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        }
        v.sort_by_key(|a| std::cmp::Reverse(a.count));
        v
    }

    /// Number of distinct flows currently alarming.
    pub fn len(&self) -> usize {
        self.alarms.len()
    }

    /// Whether no alarms are active.
    pub fn is_empty(&self) -> bool {
        self.alarms.is_empty()
    }

    /// Clear alarms (e.g. after a repair round).
    pub fn clear(&mut self) {
        self.alarms.clear();
    }
}
