//! The report-verification fast path: tag-indexed candidate lookup plus an
//! epoch-invalidated verdict cache.
//!
//! Algorithm 3's steady-state cost is a linear scan over the `(inport,
//! outport)` pair's paths with one header-set containment test per path. Two
//! observations make that cheaper without changing a single verdict:
//!
//! 1. **Most reports match a known tag.** A correctly-forwarded packet
//!    carries exactly the Bloom tag of one of its pair's paths, so indexing
//!    each pair's paths by tag bits ([`TagIndex`]) turns the Pass probe into
//!    a hash lookup followed by containment tests on the (usually one)
//!    candidate. Only failing reports — the rare case — fall back to a scan,
//!    and then only to tell `TagMismatch` from `NoMatchingPath`.
//! 2. **Most reports are repeats.** Long-lived flows are sampled over and
//!    over, producing the same `(inport, outport, header, tag)` triple; a
//!    bounded direct-mapped [`VerdictCache`] (same overwrite-on-collision
//!    design as the BDD kernel's apply cache) answers those without touching
//!    the path table at all.
//!
//! Caching verdicts is safe because Algorithm 3 is a pure function of the
//! report and the path table: a cached verdict can only go stale when the
//! table changes. Every incremental update bumps the table's
//! [`epoch`](crate::PathTable::epoch); cache slots record the epoch they
//! were filled at and are lazily disbelieved on mismatch, so no eager
//! flush is needed and a stale verdict is never served. The index is
//! rebuilt wholesale on epoch change ([`VerifyFastPath::sync`]) — it holds
//! only tag bits and path positions, so a rebuild is a cheap linear pass.
//!
//! Neither structure holds backend handles, so one [`VerifyFastPath`] works
//! unchanged on the BDD and the atom backend, and the sharded batch-ingest
//! pipeline (`crate::parallel`) can share one immutable [`TagIndex`] across
//! workers while giving each worker a private cache.

use std::collections::HashMap;

use veridp_obs as obs;
use veridp_packet::{PortRef, TagReport};

use crate::backend::HeaderSetBackend;
use crate::path_table::PathTable;
use crate::verify::VerifyOutcome;

/// Per-pair index: tag bits → positions (into the pair's path list) of the
/// paths carrying that tag.
#[derive(Debug, Clone, Default)]
struct PairIndex {
    by_tag: HashMap<u64, Vec<u32>>,
}

/// Immutable snapshot index over one [`PathTable`] at one epoch: for every
/// `(inport, outport)` pair, its paths grouped by tag bits.
#[derive(Debug, Clone)]
pub struct TagIndex {
    epoch: u64,
    pairs: HashMap<(PortRef, PortRef), PairIndex>,
}

impl TagIndex {
    /// Build the index for the table's current epoch.
    pub fn build<B: HeaderSetBackend>(table: &PathTable<B>) -> Self {
        let mut pairs: HashMap<(PortRef, PortRef), PairIndex> = HashMap::new();
        for (&pair, list) in table.iter() {
            let idx = pairs.entry(pair).or_default();
            for (i, entry) in list.iter().enumerate() {
                idx.by_tag
                    .entry(entry.tag.bits())
                    .or_default()
                    .push(i as u32);
            }
        }
        TagIndex {
            epoch: table.epoch(),
            pairs,
        }
    }

    /// The table epoch this index was built against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Positions of the pair's paths whose tag bits equal `tag_bits`.
    pub fn candidates(&self, inport: PortRef, outport: PortRef, tag_bits: u64) -> &[u32] {
        self.pairs
            .get(&(inport, outport))
            .and_then(|p| p.by_tag.get(&tag_bits))
            .map_or(&[], |v| v.as_slice())
    }
}

/// Initial verdict-cache size: `2^INITIAL_BITS` slots.
const INITIAL_BITS: u32 = 12;

/// Size ceiling: `2^MAX_BITS` slots (48 bytes each — 48 MiB at the cap,
/// reached only after a million-plus distinct reports).
const MAX_BITS: u32 = 20;

/// Golden-ratio-derived odd multiplier (same constant family as the BDD
/// kernel's FxHash).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheKey {
    inport: PortRef,
    outport: PortRef,
    header: veridp_packet::FiveTuple,
    tag_bits: u64,
    tag_nbits: u32,
}

impl CacheKey {
    fn of(report: &TagReport) -> Self {
        CacheKey {
            inport: report.inport,
            outport: report.outport,
            header: report.header,
            tag_bits: report.tag.bits(),
            tag_nbits: report.tag.nbits(),
        }
    }

    /// Multiply-rotate hash over the key's words. Not keyed — report fields
    /// are not adversary-controlled arena state, and a collision only costs
    /// one recomputation.
    fn hash(&self) -> u64 {
        let words = [
            ((self.inport.switch.0 as u64) << 16) | self.inport.port.0 as u64,
            ((self.outport.switch.0 as u64) << 16) | self.outport.port.0 as u64,
            ((self.header.src_ip as u64) << 32) | self.header.dst_ip as u64,
            ((self.header.proto as u64) << 32)
                | ((self.header.src_port as u64) << 16)
                | self.header.dst_port as u64,
            self.tag_bits,
            self.tag_nbits as u64,
        ];
        let mut h = 0u64;
        for w in words {
            h = (h.rotate_left(5) ^ w).wrapping_mul(K);
        }
        h
    }
}

#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    key: CacheKey,
    /// Table epoch at fill time; a slot is believed only while the table is
    /// still at this epoch. `u64::MAX` marks a never-filled slot (tables
    /// would need 2^64 updates to reach it).
    epoch: u64,
    verdict: VerifyOutcome,
}

const EMPTY_SLOT: CacheSlot = CacheSlot {
    key: CacheKey {
        inport: PortRef {
            switch: veridp_packet::SwitchId(0),
            port: veridp_packet::PortNo(0),
        },
        outport: PortRef {
            switch: veridp_packet::SwitchId(0),
            port: veridp_packet::PortNo(0),
        },
        header: veridp_packet::FiveTuple {
            src_ip: 0,
            dst_ip: 0,
            proto: 0,
            src_port: 0,
            dst_port: 0,
        },
        tag_bits: 0,
        tag_nbits: 0,
    },
    epoch: u64::MAX,
    verdict: VerifyOutcome::NoMatchingPath,
};

/// Bounded, direct-mapped `(inport, outport, header, tag) → verdict` cache
/// with epoch-based lazy invalidation.
///
/// Each key hashes to exactly one slot; a colliding insert evicts the
/// previous entry (losing one only costs a recomputation). Slots remember
/// the table epoch they were filled at, so a lookup after any rule change
/// misses without any flush ever running. Grows by doubling (entries
/// dropped, as in the apply cache) up to 2^`MAX_BITS` slots.
#[derive(Debug, Clone)]
pub struct VerdictCache {
    slots: Vec<CacheSlot>,
    mask: u64,
    /// Inserts since the last growth; drives the doubling heuristic.
    inserts: u64,
}

impl Default for VerdictCache {
    fn default() -> Self {
        Self::new()
    }
}

impl VerdictCache {
    /// An empty cache at the initial capacity.
    pub fn new() -> Self {
        let len = 1usize << INITIAL_BITS;
        VerdictCache {
            slots: vec![EMPTY_SLOT; len],
            mask: len as u64 - 1,
            inserts: 0,
        }
    }

    /// Cached verdict for `report`, if present and filled at `epoch`.
    #[inline]
    pub fn lookup(&self, report: &TagReport, epoch: u64) -> Option<VerifyOutcome> {
        let key = CacheKey::of(report);
        let s = &self.slots[(key.hash() & self.mask) as usize];
        if s.epoch == epoch && s.key == key {
            return Some(s.verdict);
        }
        // A slot holding this exact report at an older epoch is a verdict
        // lazily invalidated by a table update — the interesting case for
        // operators sizing update churn (vs. a plain collision/cold miss).
        if s.epoch != epoch && s.epoch != u64::MAX && s.key == key {
            Self::note_stale_epoch();
        }
        None
    }

    /// Counter bump for lazily-invalidated slots, kept out of line so the
    /// registry-handle machinery never bloats (or de-inlines) the
    /// hit-path [`lookup`](Self::lookup).
    #[cold]
    #[inline(never)]
    fn note_stale_epoch() {
        obs::counter!("veridp_verdict_cache_stale_epoch_total").inc();
    }

    /// Record `verdict` for `report` at `epoch`, evicting whatever occupied
    /// the slot.
    pub fn insert(&mut self, report: &TagReport, epoch: u64, verdict: VerifyOutcome) {
        let key = CacheKey::of(report);
        let idx = (key.hash() & self.mask) as usize;
        self.slots[idx] = CacheSlot {
            key,
            epoch,
            verdict,
        };
        self.inserts += 1;
        if self.inserts > self.slots.len() as u64 && self.slots.len() < (1 << MAX_BITS) {
            self.grow();
        }
    }

    /// Double the table, dropping entries (a cold restart is cheaper than
    /// rehashing slots that are mostly about to be evicted anyway).
    fn grow(&mut self) {
        let len = self.slots.len() * 2;
        self.slots.clear();
        self.slots.resize(len, EMPTY_SLOT);
        self.mask = len as u64 - 1;
        self.inserts = 0;
    }

    /// Current slot count (diagnostics).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Hit/miss counters of a fast-path instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Verdicts answered from the cache.
    pub hits: u64,
    /// Verdicts computed via the tag index (and cached).
    pub misses: u64,
}

impl FastPathStats {
    /// Fold another instance's counters in (per-worker stats of the sharded
    /// batch pipeline).
    pub fn merge(&mut self, other: &FastPathStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Fraction of verdicts served from the cache (0 when nothing was
    /// verified yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The layered verification fast path: a [`TagIndex`] for the Pass probe, a
/// [`VerdictCache`] in front of it, and per-worker caches for the sharded
/// batch pipeline — all bound to one [`PathTable`] by epoch.
///
/// Holds no backend handles, so one instance serves a table on any
/// [`HeaderSetBackend`]. Use [`VerifyFastPath::verify`] on the hot loop;
/// the state re-syncs itself whenever the table's epoch moved.
#[derive(Debug, Clone, Default)]
pub struct VerifyFastPath {
    index: Option<TagIndex>,
    cache: VerdictCache,
    /// Private per-worker caches of the sharded batch pipeline, kept warm
    /// across batches. `workers[i]` belongs exclusively to worker `i`.
    workers: Vec<VerdictCache>,
    stats: FastPathStats,
}

impl VerifyFastPath {
    /// A fresh fast path; the first [`verify`](Self::verify) or
    /// [`sync`](Self::sync) against a table builds the index.
    pub fn new() -> Self {
        VerifyFastPath {
            index: None,
            cache: VerdictCache::new(),
            workers: Vec::new(),
            stats: FastPathStats::default(),
        }
    }

    /// Bring the index up to the table's current epoch (no-op when already
    /// current). Cached verdicts need no flush: their slots carry the epoch
    /// they were filled at and stop matching on their own.
    pub fn sync<B: HeaderSetBackend>(&mut self, table: &PathTable<B>) {
        if self
            .index
            .as_ref()
            .is_none_or(|idx| idx.epoch() != table.epoch())
        {
            self.index = Some(TagIndex::build(table));
        }
    }

    /// The current index (present once synced against a table).
    pub fn index(&self) -> Option<&TagIndex> {
        self.index.as_ref()
    }

    /// Accumulated hit/miss counters.
    pub fn stats(&self) -> FastPathStats {
        self.stats
    }

    /// Fold externally-collected counters in (the batch pipeline's
    /// per-worker stats).
    pub(crate) fn record(&mut self, stats: &FastPathStats) {
        self.stats.merge(stats);
    }

    /// Ensure `n` private worker caches exist, and borrow the (immutable)
    /// index alongside them — the shape the sharded batch pipeline needs:
    /// one shared read-only index, `n` exclusively-owned caches.
    ///
    /// # Panics
    /// Panics if [`sync`](Self::sync) has not run yet.
    pub(crate) fn index_and_workers(&mut self, n: usize) -> (&TagIndex, &mut [VerdictCache]) {
        if self.workers.len() < n {
            self.workers.resize_with(n, VerdictCache::new);
        }
        (
            self.index
                .as_ref()
                .expect("sync() before index_and_workers"),
            &mut self.workers[..n],
        )
    }

    /// Verify one report through the cache and index, updating counters.
    /// Identical verdict to [`PathTable::verify`] on the same table.
    pub fn verify<B: HeaderSetBackend>(
        &mut self,
        table: &PathTable<B>,
        hs: &B,
        report: &TagReport,
    ) -> VerifyOutcome {
        let (outcome, _hit) = self.verify_flagged(table, hs, report);
        outcome
    }

    /// [`verify`](Self::verify), additionally reporting whether the verdict
    /// came from the cache (the server folds this into [`crate::ServerStats`]).
    pub fn verify_flagged<B: HeaderSetBackend>(
        &mut self,
        table: &PathTable<B>,
        hs: &B,
        report: &TagReport,
    ) -> (VerifyOutcome, bool) {
        self.sync(table);
        let epoch = table.epoch();
        if let Some(v) = self.cache.lookup(report, epoch) {
            // Cache hits run instruction-identical to the obs-off build:
            // all latency sampling lives on the miss path below, and the
            // hit count itself is mirrored from `stats` pull-style.
            self.stats.hits += 1;
            return (v, true);
        }
        // Decimated span over the computed-verdict (miss) path: index probe,
        // containment tests, cache fill. Hit latency is the verdict-cache
        // lookup itself — effectively constant — so sampling misses is what
        // tells an operator whether the index is doing its job.
        let _span = obs::sampled_span!(obs::histogram!("veridp_fastpath_miss_ns"), 16);
        let index = self.index.as_ref().expect("sync populated the index");
        let v = table.verify_indexed(report, hs, index);
        self.cache.insert(report, epoch, v);
        self.stats.misses += 1;
        (v, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridp_bloom::BloomTag;
    use veridp_packet::FiveTuple;

    fn report(seed: u32) -> TagReport {
        let header = FiveTuple::tcp(seed, seed.wrapping_mul(31), 40000, 80);
        TagReport::new(
            PortRef::new(1, 1),
            PortRef::new(2, 2),
            header,
            BloomTag::from_bits((seed as u64) & 0xffff, 16),
        )
    }

    #[test]
    fn cache_hit_after_insert_and_epoch_miss() {
        let mut c = VerdictCache::new();
        let r = report(7);
        assert_eq!(c.lookup(&r, 0), None);
        c.insert(&r, 0, VerifyOutcome::Pass);
        assert_eq!(c.lookup(&r, 0), Some(VerifyOutcome::Pass));
        // An epoch bump invalidates without any flush.
        assert_eq!(c.lookup(&r, 1), None);
        // Re-filling at the new epoch works, and the old epoch is dead.
        c.insert(&r, 1, VerifyOutcome::TagMismatch);
        assert_eq!(c.lookup(&r, 1), Some(VerifyOutcome::TagMismatch));
        assert_eq!(c.lookup(&r, 0), None);
    }

    #[test]
    fn cache_distinguishes_full_key() {
        let mut c = VerdictCache::new();
        let r = report(7);
        c.insert(&r, 0, VerifyOutcome::Pass);
        // Same bits, different width: different tag, must miss.
        let mut wider = r;
        wider.tag = BloomTag::from_bits(r.tag.bits(), 32);
        assert_eq!(c.lookup(&wider, 0), None);
        let mut other_pair = r;
        other_pair.outport = PortRef::new(3, 1);
        assert_eq!(c.lookup(&other_pair, 0), None);
    }

    #[test]
    fn collision_evicts_rather_than_grows_unboundedly() {
        let mut c = VerdictCache::new();
        let n = 1u32 << 21;
        for i in 0..n {
            c.insert(&report(i), 0, VerifyOutcome::Pass);
        }
        assert!(c.capacity() <= 1 << MAX_BITS);
        // Whatever survived the evictions must still answer correctly.
        let mut hits = 0u32;
        for i in 0..n {
            if let Some(v) = c.lookup(&report(i), 0) {
                assert_eq!(v, VerifyOutcome::Pass);
                hits += 1;
            }
        }
        assert!(hits > 0);
    }

    #[test]
    fn cache_grows_up_to_cap() {
        let mut c = VerdictCache::new();
        let initial = c.capacity();
        for i in 0..(1u32 << 21) {
            c.insert(&report(i), 0, VerifyOutcome::NoMatchingPath);
        }
        assert!(c.capacity() > initial);
        assert_eq!(c.capacity(), 1 << MAX_BITS);
    }
}
