//! Header rewrites — the paper's future-work item 1 (§8), implemented.
//!
//! The base system assumes headers are immutable along a path (§3.4), so a
//! path-table entry carries *one* header set and the exit switch's reported
//! header can be matched against it directly. With set-field actions (NAT,
//! load-balancer VIP rewriting, service chaining) the header the exit switch
//! sees differs from the header that entered, and plain VeriDP would flag
//! every rewritten flow as inconsistent.
//!
//! The extension tracks the header *transformation* along each path:
//!
//! * switches attach ordered [`FieldSet`] lists to rules
//!   ([`veridp_switch::Switch::set_rewrite`]), executed before the VeriDP
//!   pipeline tags the packet;
//! * path-table construction splits each switch's transfer predicates by
//!   **rewrite class** (which set-field chain a matching rule applies) and
//!   pushes header sets through the BDD *image* of each class;
//! * every path entry stores both the **entry** header set (what may enter
//!   the path, in entry coordinates — maintained via *preimages* through the
//!   rewrite chain) and the **exit** header set (the image at the exit);
//! * verification matches the reported header against the *exit* set, since
//!   that is what the exit switch observed and reported.
//!
//! Image and preimage of `field := v` over a header-set BDD `S`:
//!
//! ```text
//! image(S)    = (∃ field. S) ∧ (field = v)
//! preimage(S) = S[field := v]          (restrict / cofactor; field freed)
//! ```

use std::collections::HashMap;

use veridp_bdd::Bdd;
use veridp_bloom::BloomTag;
use veridp_packet::{
    FiveTuple, Hop, PortNo, PortRef, SwitchId, TagReport, DROP_PORT, MAX_PATH_LENGTH,
};
use veridp_switch::{Action, FieldSet, FlowRule};
use veridp_topo::Topology;

use crate::headerspace::HeaderSpace;
use crate::verify::VerifyOutcome;

/// BDD variables of a rewritten field.
fn field_vars(fs: &FieldSet) -> Vec<u32> {
    let off = fs.field.offset();
    (0..fs.field.width()).map(|i| off + i).collect()
}

/// The cube `field = value` as variable assignments (MSB-first).
fn field_assignments(fs: &FieldSet) -> Vec<(u32, bool)> {
    let off = fs.field.offset();
    let w = fs.field.width();
    (0..w)
        .map(|i| (off + i, (fs.value >> (w - 1 - i)) & 1 == 1))
        .collect()
}

/// Image of `set` under one set-field: `(∃ field. set) ∧ (field = value)`.
pub fn image_one(hs: &mut HeaderSpace, set: Bdd, fs: &FieldSet) -> Bdd {
    let vars = field_vars(fs);
    let freed = hs.mgr().exists(set, &vars);
    let cube = hs.mgr().cube(&field_assignments(fs));
    hs.mgr().and(freed, cube)
}

/// Image under an ordered rewrite chain.
pub fn image(hs: &mut HeaderSpace, set: Bdd, sets: &[FieldSet]) -> Bdd {
    sets.iter().fold(set, |s, fs| image_one(hs, s, fs))
}

/// Preimage of `set` under one set-field: `set[field := value]`, with the
/// field's bits freed (any input value maps onto the assigned one).
pub fn preimage_one(hs: &mut HeaderSpace, set: Bdd, fs: &FieldSet) -> Bdd {
    hs.mgr().restrict(set, &field_assignments(fs))
}

/// Preimage under an ordered chain (applied backwards).
pub fn preimage(hs: &mut HeaderSpace, set: Bdd, sets: &[FieldSet]) -> Bdd {
    sets.iter().rev().fold(set, |s, fs| preimage_one(hs, s, fs))
}

/// A rule plus its rewrite chain (empty chain = plain forwarding).
#[derive(Debug, Clone)]
pub struct RwRule {
    pub rule: FlowRule,
    pub sets: Vec<FieldSet>,
}

impl RwRule {
    /// A plain rule without rewrites.
    pub fn plain(rule: FlowRule) -> Self {
        RwRule {
            rule,
            sets: Vec::new(),
        }
    }

    /// A rule with a rewrite chain.
    pub fn rewriting(rule: FlowRule, sets: Vec<FieldSet>) -> Self {
        RwRule { rule, sets }
    }
}

/// One output class of a switch for a given in-port: all headers going to
/// `out` while having `sets` applied.
#[derive(Debug, Clone)]
struct OutputClass {
    out: PortNo,
    sets: Vec<FieldSet>,
    pred: Bdd,
}

/// Per-switch transfer predicates split by rewrite class.
#[derive(Debug, Clone)]
struct RwPredicates {
    /// Classes per in-port (`None` key models port-agnostic rule sets, the
    /// common case).
    uniform: Option<Vec<OutputClass>>,
    per_port: HashMap<PortNo, Vec<OutputClass>>,
}

impl RwPredicates {
    fn from_rules(ports: &[PortNo], rules: &[RwRule], hs: &mut HeaderSpace) -> Self {
        let mut sorted: Vec<&RwRule> = rules.iter().collect();
        sorted.sort_by_key(|r| (std::cmp::Reverse(r.rule.priority), r.rule.id));
        let any_in_port = sorted.iter().any(|r| r.rule.fields.in_port.is_some());
        if !any_in_port {
            return RwPredicates {
                uniform: Some(Self::scan(&sorted, None, hs)),
                per_port: HashMap::new(),
            };
        }
        let per_port = ports
            .iter()
            .map(|&x| (x, Self::scan(&sorted, Some(x), hs)))
            .collect();
        RwPredicates {
            uniform: None,
            per_port,
        }
    }

    fn scan(sorted: &[&RwRule], in_port: Option<PortNo>, hs: &mut HeaderSpace) -> Vec<OutputClass> {
        let mut classes: Vec<OutputClass> = Vec::new();
        let mut remaining = Bdd::TRUE;
        for r in sorted {
            if remaining.is_false() {
                break;
            }
            match (in_port, r.rule.fields.in_port) {
                (Some(x), Some(rp)) if x != rp => continue,
                (None, Some(_)) => continue,
                _ => {}
            }
            let m = hs.match_set(&r.rule.fields);
            let eff = hs.mgr().and(m, remaining);
            if eff.is_false() {
                continue;
            }
            remaining = hs.mgr().diff(remaining, m);
            let out = match r.rule.action {
                Action::Forward(p) => p,
                Action::Drop => DROP_PORT,
            };
            // Drops never rewrite observably.
            let sets = if out.is_drop() {
                Vec::new()
            } else {
                r.sets.clone()
            };
            if let Some(c) = classes.iter_mut().find(|c| c.out == out && c.sets == sets) {
                c.pred = hs.mgr().or(c.pred, eff);
            } else {
                classes.push(OutputClass {
                    out,
                    sets,
                    pred: eff,
                });
            }
        }
        if !remaining.is_false() {
            if let Some(c) = classes.iter_mut().find(|c| c.out.is_drop()) {
                c.pred = hs.mgr().or(c.pred, remaining);
            } else {
                classes.push(OutputClass {
                    out: DROP_PORT,
                    sets: Vec::new(),
                    pred: remaining,
                });
            }
        }
        classes
    }

    fn classes(&self, x: PortNo) -> &[OutputClass] {
        match &self.uniform {
            Some(c) => c,
            None => self.per_port.get(&x).map_or(&[], |v| v.as_slice()),
        }
    }
}

/// A path entry in the rewrite-aware table.
#[derive(Debug, Clone)]
pub struct RwPathEntry {
    /// Headers (in *entry* coordinates) admitted on this path.
    pub entry_headers: Bdd,
    /// Headers as observed at the exit (images through every rewrite).
    pub exit_headers: Bdd,
    /// The hop sequence.
    pub hops: Vec<Hop>,
    /// The expected tag.
    pub tag: BloomTag,
    /// The concatenated rewrite chain applied along the path.
    pub chain: Vec<FieldSet>,
}

/// The rewrite-aware path table.
///
/// Construction and verification mirror Algorithms 2 and 3, with header sets
/// transformed per hop. Incremental update is not supported for
/// rewrite-enabled switches — rebuild on change (documented trade-off).
#[derive(Debug)]
pub struct RwPathTable {
    topo: Topology,
    tag_bits: u32,
    preds: HashMap<SwitchId, RwPredicates>,
    entries: HashMap<(PortRef, PortRef), Vec<RwPathEntry>>,
}

impl RwPathTable {
    /// Build the table from per-switch rewrite-annotated rule lists.
    pub fn build(
        topo: &Topology,
        rules: &HashMap<SwitchId, Vec<RwRule>>,
        hs: &mut HeaderSpace,
        tag_bits: u32,
    ) -> Self {
        let mut table = RwPathTable {
            topo: topo.clone(),
            tag_bits,
            preds: HashMap::new(),
            entries: HashMap::new(),
        };
        for info in topo.switches() {
            let ports: Vec<PortNo> = (1..=info.num_ports).map(PortNo).collect();
            let list = rules.get(&info.id).map_or(&[][..], |v| v.as_slice());
            table
                .preds
                .insert(info.id, RwPredicates::from_rules(&ports, list, hs));
        }
        let entry_ports: Vec<PortRef> = topo
            .host_ports()
            .into_iter()
            .filter(|p| topo.is_terminal_port(*p))
            .collect();
        for inport in entry_ports {
            table.traverse(
                inport,
                inport,
                Bdd::TRUE,
                Bdd::TRUE,
                Vec::new(),
                Vec::new(),
                BloomTag::empty(tag_bits),
                hs,
            );
        }
        table
    }

    /// One expansion step. `h_entry` lives in entry coordinates; `h_cur` in
    /// current (post-rewrite) coordinates; `chain` is the rewrite chain
    /// applied so far.
    #[allow(clippy::too_many_arguments)]
    fn traverse(
        &mut self,
        inport: PortRef,
        at: PortRef,
        h_entry: Bdd,
        h_cur: Bdd,
        hops: Vec<Hop>,
        chain: Vec<FieldSet>,
        tag: BloomTag,
        hs: &mut HeaderSpace,
    ) {
        if hops.len() >= MAX_PATH_LENGTH as usize || hops.iter().any(|hop| hop.in_ref() == at) {
            return;
        }
        let Some(preds) = self.preds.get(&at.switch) else {
            return;
        };
        let classes: Vec<OutputClass> = preds.classes(at.port).to_vec();
        for class in classes {
            // Constrain the current header by the class predicate…
            let cur2 = hs.mgr().and(h_cur, class.pred);
            if cur2.is_false() {
                continue;
            }
            // …and reflect that constraint back into entry coordinates.
            let pred_at_entry = preimage(hs, class.pred, &chain);
            let entry2 = hs.mgr().and(h_entry, pred_at_entry);
            if entry2.is_false() {
                continue;
            }
            // Apply the class rewrite.
            let cur3 = image(hs, cur2, &class.sets);
            let mut chain2 = chain.clone();
            chain2.extend(class.sets.iter().copied());

            let hop = Hop {
                in_port: at.port,
                switch: at.switch,
                out_port: class.out,
            };
            let mut hops2 = hops.clone();
            hops2.push(hop);
            let tag2 = tag.union(BloomTag::singleton(&hop.encode(), self.tag_bits));
            let out_ref = PortRef {
                switch: at.switch,
                port: class.out,
            };
            if class.out.is_drop() || self.topo.is_terminal_port(out_ref) {
                self.entries
                    .entry((inport, out_ref))
                    .or_default()
                    .push(RwPathEntry {
                        entry_headers: entry2,
                        exit_headers: cur3,
                        hops: hops2,
                        tag: tag2,
                        chain: chain2,
                    });
            } else if self.topo.is_middlebox_port(out_ref) {
                self.traverse(inport, out_ref, entry2, cur3, hops2, chain2, tag2, hs);
            } else if let Some(next) = self.topo.peer(out_ref) {
                self.traverse(inport, next, entry2, cur3, hops2, chain2, tag2, hs);
            }
        }
    }

    /// Paths for a pair.
    pub fn paths(&self, inport: PortRef, outport: PortRef) -> &[RwPathEntry] {
        self.entries
            .get(&(inport, outport))
            .map_or(&[], |v| v.as_slice())
    }

    /// Total number of paths.
    pub fn num_paths(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Algorithm 3, rewrite-aware: the reported header is matched against
    /// each candidate path's *exit* header set.
    pub fn verify(&self, report: &TagReport, hs: &HeaderSpace) -> VerifyOutcome {
        let paths = self.paths(report.inport, report.outport);
        let mut matched = false;
        for p in paths {
            if hs.contains(p.exit_headers, &report.header) {
                matched = true;
                if p.tag == report.tag {
                    return VerifyOutcome::Pass;
                }
            }
        }
        if matched {
            VerifyOutcome::TagMismatch
        } else {
            VerifyOutcome::NoMatchingPath
        }
    }

    /// Concrete control-plane walk applying rewrites: returns the hop list
    /// and the final (possibly rewritten) header.
    pub fn trace(
        &self,
        from: PortRef,
        header: &FiveTuple,
        hs: &HeaderSpace,
    ) -> (Vec<Hop>, FiveTuple) {
        let mut hops = Vec::new();
        let mut h = *header;
        let mut at = from;
        while hops.len() < MAX_PATH_LENGTH as usize {
            let Some(preds) = self.preds.get(&at.switch) else {
                break;
            };
            let mut found = None;
            for class in preds.classes(at.port) {
                if hs.contains(class.pred, &h) {
                    found = Some(class.clone());
                    break;
                }
            }
            let Some(class) = found else { break };
            FieldSet::apply_all(&class.sets, &mut h);
            let hop = Hop {
                in_port: at.port,
                switch: at.switch,
                out_port: class.out,
            };
            hops.push(hop);
            let out_ref = PortRef {
                switch: at.switch,
                port: class.out,
            };
            if class.out.is_drop() || self.topo.is_terminal_port(out_ref) {
                break;
            }
            if self.topo.is_middlebox_port(out_ref) {
                at = out_ref;
                continue;
            }
            match self.topo.peer(out_ref) {
                Some(next) => at = next,
                None => break,
            }
        }
        (hops, h)
    }
}
