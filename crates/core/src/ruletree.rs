//! The prefix rule tree of §4.4 (Figure 8): incremental *port predicate*
//! maintenance for IP-prefix forwarding tables.
//!
//! For pure destination-prefix rules, longest-prefix-match containment
//! organizes rules as a forest; adding a virtual drop rule `0.0.0.0/0` turns
//! it into a tree. Each rule's *effective match* is its prefix minus its
//! children's prefixes:
//!
//! ```text
//! R.match = R.prefix ∧ ¬(∨ child.prefix)
//! P_y     = ∨ { R.match : R.outport = y }
//! ```
//!
//! Adding rule `R` (with parent `Q`) therefore moves exactly `Δ = R.match`
//! from `Q`'s port to `R`'s port:
//!
//! ```text
//! P_{R.out} ← P_{R.out} ∨ Δ        P_{Q.out} ← P_{Q.out} ∧ ¬Δ
//! ```
//!
//! and deletion mirrors it. This gives O(children) BDD work per update
//! instead of the O(table) rescan the general predicate-diff performs —
//! the general path ([`crate::PathTable::add_rule`]) remains the correctness
//! reference and handles arbitrary rules; this tree is the fast path for the
//! RIB-shaped workloads of Fig. 14, and the test-suite cross-checks the two.

use std::collections::HashMap;

use veridp_bdd::Bdd;
use veridp_packet::{PortNo, DROP_PORT};
use veridp_switch::RuleId;

use crate::headerspace::HeaderSpace;

/// A destination-prefix forwarding rule as the tree sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixRule {
    pub id: RuleId,
    pub prefix: u32,
    pub plen: u8,
    pub out: PortNo,
}

/// One delta produced by an update: the headers that moved between ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortDelta {
    /// Headers `Δ` that moved.
    pub delta: Bdd,
    /// The port that lost them.
    pub from: PortNo,
    /// The port that gained them.
    pub to: PortNo,
}

#[derive(Debug, Clone)]
struct Node {
    rule: PrefixRule,
    children: Vec<usize>,
}

/// The rule tree: rules ordered by prefix containment, rooted at the virtual
/// drop rule `0.0.0.0/0 → ⊥`.
#[derive(Debug, Clone)]
pub struct RuleTree {
    nodes: Vec<Node>,
    /// Port predicates `P_y`, maintained incrementally.
    preds: HashMap<PortNo, Bdd>,
}

fn contains(outer: &PrefixRule, inner: &PrefixRule) -> bool {
    outer.plen <= inner.plen && veridp_switch::prefix_mask(inner.prefix, outer.plen) == outer.prefix
}

impl RuleTree {
    /// An empty tree: everything drops.
    pub fn new() -> Self {
        let root = Node {
            rule: PrefixRule {
                id: RuleId(u64::MAX),
                prefix: 0,
                plen: 0,
                out: DROP_PORT,
            },
            children: Vec::new(),
        };
        RuleTree {
            nodes: vec![root],
            preds: HashMap::from([(DROP_PORT, Bdd::TRUE)]),
        }
    }

    /// Current predicate for port `y` (headers forwarded there).
    pub fn predicate(&self, y: PortNo) -> Bdd {
        self.preds.get(&y).copied().unwrap_or(Bdd::FALSE)
    }

    /// All ports with non-false predicates, in deterministic order.
    pub fn ports(&self) -> Vec<PortNo> {
        let mut v: Vec<PortNo> = self
            .preds
            .iter()
            .filter(|(_, b)| !b.is_false())
            .map(|(p, _)| *p)
            .collect();
        v.sort();
        v
    }

    /// Number of real (non-virtual) rules.
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether the tree holds no real rules.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The deepest node whose prefix *properly* contains `rule` (its future
    /// parent). Descends from the virtual root; an exact-duplicate prefix
    /// stops the descent at its parent, where [`RuleTree::add`] detects it.
    fn find_parent(&self, rule: &PrefixRule) -> usize {
        let mut at = 0usize;
        loop {
            let next = self.nodes[at].children.iter().copied().find(|&c| {
                let cr = &self.nodes[c].rule;
                contains(cr, rule) && !(cr.prefix == rule.prefix && cr.plen == rule.plen)
            });
            match next {
                Some(c) => at = c,
                None => return at,
            }
        }
    }

    /// `R.match = R.prefix ∧ ¬(∨ children prefixes)` for a node.
    fn match_of(&self, idx: usize, hs: &mut HeaderSpace) -> Bdd {
        let r = self.nodes[idx].rule;
        let mut acc = hs.dst_prefix(r.prefix, r.plen);
        for &c in &self.nodes[idx].children {
            let cr = self.nodes[c].rule;
            let cb = hs.dst_prefix(cr.prefix, cr.plen);
            acc = hs.mgr().diff(acc, cb);
        }
        acc
    }

    /// Insert a rule, returning the delta (`None` for an exact-duplicate
    /// prefix, which replaces the port in place and moves its match).
    ///
    /// # Panics
    /// Panics if a rule with the same prefix/length already exists (the
    /// paper treats modification as delete + add).
    pub fn add(&mut self, rule: PrefixRule, hs: &mut HeaderSpace) -> PortDelta {
        let parent = self.find_parent(&rule);
        assert!(
            !self.nodes[parent].children.iter().any(|&c| {
                let cr = &self.nodes[c].rule;
                cr.prefix == rule.prefix && cr.plen == rule.plen
            }),
            "duplicate prefix {:#x}/{} — delete first",
            rule.prefix,
            rule.plen
        );
        let parent_out = self.nodes[parent].rule.out;

        // Children of the parent that fall inside the new prefix move under
        // it — their matches are *not* part of Δ.
        let moving: Vec<usize> = self.nodes[parent]
            .children
            .iter()
            .copied()
            .filter(|&c| contains(&rule, &self.nodes[c].rule))
            .collect();

        let idx = self.nodes.len();
        self.nodes.push(Node {
            rule,
            children: moving.clone(),
        });
        self.nodes[parent].children.retain(|c| !moving.contains(c));
        self.nodes[parent].children.push(idx);

        // Δ = the new rule's effective match. Same-port additions shadow the
        // parent without changing any predicate.
        let delta = self.match_of(idx, hs);
        let to = rule.out;
        if to != parent_out {
            let p_to = self.predicate(to);
            let p_from = self.predicate(parent_out);
            let new_to = hs.mgr().or(p_to, delta);
            let new_from = hs.mgr().diff(p_from, delta);
            self.preds.insert(to, new_to);
            self.preds.insert(parent_out, new_from);
        }
        PortDelta {
            delta,
            from: parent_out,
            to,
        }
    }

    /// Delete a rule by id, returning the delta, or `None` if absent.
    pub fn delete(&mut self, id: RuleId, hs: &mut HeaderSpace) -> Option<PortDelta> {
        let idx = self.nodes.iter().position(|n| n.rule.id == id)?;
        debug_assert_ne!(idx, 0, "virtual root cannot be deleted");
        let delta = self.match_of(idx, hs);
        let rule = self.nodes[idx].rule;
        let parent = (0..self.nodes.len())
            .find(|&p| self.nodes[p].children.contains(&idx))
            .expect("parent");
        let parent_out = self.nodes[parent].rule.out;

        // Reattach children to the parent; remove the node (leave a tombstone
        // to keep indices stable).
        let children = std::mem::take(&mut self.nodes[idx].children);
        self.nodes[parent].children.retain(|&c| c != idx);
        self.nodes[parent].children.extend(children);
        self.nodes[idx].rule.out = DROP_PORT; // tombstone; unreachable
        self.nodes[idx].rule.id = RuleId(u64::MAX - 1);

        if rule.out != parent_out {
            let p_from = self.predicate(rule.out);
            let p_to = self.predicate(parent_out);
            let new_from = hs.mgr().diff(p_from, delta);
            let new_to = hs.mgr().or(p_to, delta);
            self.preds.insert(rule.out, new_from);
            self.preds.insert(parent_out, new_to);
        }
        Some(PortDelta {
            delta,
            from: rule.out,
            to: parent_out,
        })
    }
}

impl Default for RuleTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridp_packet::FiveTuple;
    use veridp_topo::gen::ip;

    fn rule(id: u64, prefix: u32, plen: u8, out: u16) -> PrefixRule {
        PrefixRule {
            id: RuleId(id),
            prefix: veridp_switch::prefix_mask(prefix, plen),
            plen,
            out: PortNo(out),
        }
    }

    /// Longest-prefix-match reference semantics over the raw rule list.
    fn lpm(rules: &[PrefixRule], dst: u32) -> PortNo {
        rules
            .iter()
            .filter(|r| veridp_switch::prefix_mask(dst, r.plen) == r.prefix)
            .max_by_key(|r| r.plen)
            .map_or(DROP_PORT, |r| r.out)
    }

    fn check_against_lpm(tree: &RuleTree, rules: &[PrefixRule], hs: &HeaderSpace, probes: &[u32]) {
        for &dst in probes {
            let h = FiveTuple::tcp(1, dst, 2, 3);
            let expect = lpm(rules, dst);
            for y in tree.ports() {
                let member = hs.contains(tree.predicate(y), &h);
                assert_eq!(
                    member,
                    y == expect,
                    "dst {:x} port {y} (expect {expect})",
                    dst
                );
            }
        }
    }

    #[test]
    fn empty_tree_drops_everything() {
        let tree = RuleTree::new();
        assert!(tree.is_empty());
        assert!(tree.predicate(DROP_PORT).is_true());
        assert!(tree.predicate(PortNo(1)).is_false());
    }

    #[test]
    fn figure8_structure() {
        // The paper's example: 10.0.0.0/8 covering 10.1.0.0/16 and
        // 10.2.1.0/24 (adapted to valid prefix/length pairs).
        let mut hs = HeaderSpace::new();
        let mut tree = RuleTree::new();
        let rules = vec![
            rule(1, ip(10, 0, 0, 0), 8, 1),
            rule(2, ip(10, 1, 0, 0), 16, 2),
            rule(3, ip(10, 2, 1, 0), 24, 3),
        ];
        for r in &rules {
            tree.add(*r, &mut hs);
        }
        let probes = [
            ip(10, 5, 5, 5), // /8 only
            ip(10, 1, 2, 3), // /16 hole
            ip(10, 2, 1, 9), // /24 hole
            ip(10, 2, 2, 9), // /8 again
            ip(11, 0, 0, 1), // miss → drop
        ];
        check_against_lpm(&tree, &rules, &hs, &probes);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        // Insert the covering prefix AFTER its holes: the tree must adopt
        // them as children and compute Δ excluding them.
        let mut hs = HeaderSpace::new();
        let mut tree = RuleTree::new();
        let rules = vec![
            rule(2, ip(10, 1, 0, 0), 16, 2),
            rule(3, ip(10, 2, 1, 0), 24, 3),
            rule(1, ip(10, 0, 0, 0), 8, 1), // parent arrives last
        ];
        for r in &rules {
            tree.add(*r, &mut hs);
        }
        check_against_lpm(
            &tree,
            &rules,
            &hs,
            &[
                ip(10, 5, 5, 5),
                ip(10, 1, 2, 3),
                ip(10, 2, 1, 9),
                ip(9, 9, 9, 9),
            ],
        );
    }

    #[test]
    fn add_delta_moves_between_correct_ports() {
        let mut hs = HeaderSpace::new();
        let mut tree = RuleTree::new();
        let d1 = tree.add(rule(1, ip(10, 0, 0, 0), 8, 1), &mut hs);
        assert_eq!(d1.from, DROP_PORT);
        assert_eq!(d1.to, PortNo(1));
        let d2 = tree.add(rule(2, ip(10, 1, 0, 0), 16, 2), &mut hs);
        assert_eq!(
            d2.from,
            PortNo(1),
            "hole moves traffic away from the covering rule"
        );
        assert_eq!(d2.to, PortNo(2));
    }

    #[test]
    fn delete_restores_parent() {
        let mut hs = HeaderSpace::new();
        let mut tree = RuleTree::new();
        let rules = vec![
            rule(1, ip(10, 0, 0, 0), 8, 1),
            rule(2, ip(10, 1, 0, 0), 16, 2),
        ];
        for r in &rules {
            tree.add(*r, &mut hs);
        }
        let d = tree.delete(RuleId(2), &mut hs).expect("present");
        assert_eq!(d.from, PortNo(2));
        assert_eq!(d.to, PortNo(1));
        check_against_lpm(
            &tree,
            &[rules[0]],
            &hs,
            &[ip(10, 1, 2, 3), ip(10, 5, 5, 5), ip(11, 0, 0, 1)],
        );
        assert!(tree.delete(RuleId(2), &mut hs).is_none());
    }

    #[test]
    fn delete_middle_reattaches_grandchildren() {
        let mut hs = HeaderSpace::new();
        let mut tree = RuleTree::new();
        let all = vec![
            rule(1, ip(10, 0, 0, 0), 8, 1),
            rule(2, ip(10, 1, 0, 0), 16, 2),
            rule(3, ip(10, 1, 2, 0), 24, 3),
        ];
        for r in &all {
            tree.add(*r, &mut hs);
        }
        tree.delete(RuleId(2), &mut hs);
        let remaining = [all[0], all[2]];
        check_against_lpm(
            &tree,
            &remaining,
            &hs,
            &[ip(10, 1, 2, 5), ip(10, 1, 9, 9), ip(10, 9, 9, 9)],
        );
    }

    #[test]
    fn predicates_partition_under_random_churn() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut hs = HeaderSpace::new();
        let mut tree = RuleTree::new();
        let mut live: Vec<PrefixRule> = Vec::new();
        let mut next = 1u64;
        for _ in 0..120 {
            if live.is_empty() || rng.gen_bool(0.7) {
                let plen = *[8u8, 12, 16, 20, 24, 28, 32]
                    .get(rng.gen_range(0..7usize))
                    .unwrap();
                let r = rule(
                    next,
                    ip(10, rng.gen_range(0..4), rng.gen_range(0..4), 0),
                    plen,
                    rng.gen_range(1..5),
                );
                next += 1;
                if live
                    .iter()
                    .any(|x| x.prefix == r.prefix && x.plen == r.plen)
                {
                    continue;
                }
                tree.add(r, &mut hs);
                live.push(r);
            } else {
                let i = rng.gen_range(0..live.len());
                let r = live.swap_remove(i);
                tree.delete(r.id, &mut hs).expect("live rule");
            }
            // Invariant: port predicates partition the space.
            let ports = tree.ports();
            let sets: Vec<Bdd> = ports.iter().map(|&y| tree.predicate(y)).collect();
            let union = hs.mgr().or_many(&sets);
            assert!(union.is_true());
            for i in 0..sets.len() {
                for j in i + 1..sets.len() {
                    assert!(!hs.mgr().intersects(sets[i], sets[j]));
                }
            }
            // Semantics match longest-prefix-match on random probes.
            let probes: Vec<u32> = (0..16)
                .map(|_| ip(10, rng.gen_range(0..4), rng.gen_range(0..4), rng.gen()))
                .collect();
            check_against_lpm(&tree, &live, &hs, &probes);
        }
    }
}
