//! Fault localization: PathInfer (Algorithm 4, §4.3).
//!
//! When verification fails, the server reconstructs the *real* path of the
//! packet from its Bloom tag. The strawman — walk the correct path and blame
//! the first hop whose filter bits are missing — mislocalizes on Bloom false
//! positives. Algorithm 4 instead exploits that downstream switches are
//! mostly healthy: from each backtracked suspect hop it tries to complete a
//! tag-consistent path to the reported outport using the *control-plane*
//! forwarding of the downstream switches, dismissing suspects that admit no
//! such completion.

use veridp_bloom::BloomTag;
use veridp_obs as obs;
use veridp_packet::{Hop, PortRef, SwitchId, TagReport};

use crate::backend::HeaderSetBackend;
use crate::path_table::PathTable;

/// One candidate real path found by PathInfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferredPath {
    /// The full reconstructed hop sequence.
    pub hops: Vec<Hop>,
    /// The switch where the path deviates from the correct one — the
    /// suspected faulty switch.
    pub faulty_switch: SwitchId,
    /// Index into `hops` of the deviating hop.
    pub deviation_index: usize,
}

/// Result of localization for one failed report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalizeOutcome {
    /// The correct path the control plane intended (may be empty if the
    /// header matches no forwarding at the inport).
    pub correct_path: Vec<Hop>,
    /// All tag-consistent real-path candidates, in discovery order
    /// (innermost deviation first).
    pub candidates: Vec<InferredPath>,
}

impl LocalizeOutcome {
    /// The primary suspect: the faulty switch of the first candidate.
    pub fn primary_suspect(&self) -> Option<SwitchId> {
        self.candidates.first().map(|c| c.faulty_switch)
    }
}

/// `BF(hop) ⊓ tag = BF(hop)` — hop-membership test against the packet tag.
fn hop_in_tag(hop: &Hop, tag: BloomTag) -> bool {
    tag.contains(&hop.encode())
}

impl<B: HeaderSetBackend> PathTable<B> {
    /// Algorithm 4: infer the set of possible real paths for a failed
    /// report, and the faulty switch each one implicates.
    pub fn localize(&self, report: &TagReport, hs: &B) -> LocalizeOutcome {
        // Localization only runs on (rare) failed reports, so a full span
        // and per-step counters cost nothing on the verification hot path.
        obs::counter!("veridp_localize_total").inc();
        let _span = obs::histogram!("veridp_localize_ns").start_span();
        let tag = report.tag;
        // Line 2: the original (correct) path for this header.
        let correct_path = self.trace(report.inport, &report.header, hs);

        // Lines 4–7: the longest prefix of the correct path consistent with
        // the tag, *including* the first failing hop (it is the outermost
        // suspect and gets popped first).
        let mut com_path: Vec<Hop> = Vec::new();
        for hop in &correct_path {
            com_path.push(*hop);
            if !hop_in_tag(hop, tag) {
                break;
            }
        }

        // Lines 8–22: backtrack, enumerating deviations.
        let mut candidates = Vec::new();
        let mut backtracks: u64 = 0;
        let mut deviations_probed: u64 = 0;
        while let Some(dev_hop) = com_path.pop() {
            backtracks += 1;
            let s = dev_hop.switch;
            let x = dev_hop.in_port;
            let Some(info) = self.topo().switch(s) else {
                continue;
            };
            let mut ports: Vec<veridp_packet::PortNo> =
                (1..=info.num_ports).map(veridp_packet::PortNo).collect();
            ports.push(veridp_packet::DROP_PORT);
            for y in ports {
                if y == dev_hop.out_port {
                    continue; // that's the correct hop, already ruled out
                }
                let first = Hop {
                    in_port: x,
                    switch: s,
                    out_port: y,
                };
                if !hop_in_tag(&first, tag) {
                    continue; // the deviating hop itself must be in the tag
                }
                deviations_probed += 1;
                let mut dev_path = vec![first];
                let out_ref = PortRef { switch: s, port: y };
                if out_ref == report.outport {
                    // The deviation immediately exits at the reported port.
                    candidates.push(assemble(&com_path, dev_path, s));
                    continue;
                }
                if y.is_drop() || self.topo().is_terminal_port(out_ref) {
                    continue; // leaves the network somewhere else: dismiss
                }
                // Follow control-plane forwarding from the next switch,
                // requiring every hop to be tag-consistent (lines 14–22).
                let next = if self.topo().is_middlebox_port(out_ref) {
                    out_ref
                } else {
                    match self.topo().peer(out_ref) {
                        Some(n) => n,
                        None => continue,
                    }
                };
                let cont = self.trace(next, &report.header, hs);
                let mut ok = false;
                for hop in cont {
                    if !hop_in_tag(&hop, tag) {
                        break; // dismiss this deviation
                    }
                    dev_path.push(hop);
                    if hop.out_ref() == report.outport {
                        ok = true;
                        break;
                    }
                    if dev_path.len() > self.topo().num_switches() + 2 {
                        break;
                    }
                }
                if ok {
                    candidates.push(assemble(&com_path, dev_path, s));
                }
            }
        }
        obs::counter!("veridp_localize_backtrack_steps_total").add(backtracks);
        obs::counter!("veridp_localize_deviations_probed_total").add(deviations_probed);
        obs::histogram!("veridp_localize_candidates").record(candidates.len() as u64);
        LocalizeOutcome {
            correct_path,
            candidates,
        }
    }
}

fn assemble(com_path: &[Hop], dev_path: Vec<Hop>, faulty: SwitchId) -> InferredPath {
    let deviation_index = com_path.len();
    let mut hops = com_path.to_vec();
    hops.extend(dev_path);
    InferredPath {
        hops,
        faulty_switch: faulty,
        deviation_index,
    }
}
