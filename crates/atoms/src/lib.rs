//! Atom-partition header sets: a Delta-net-inspired alternative to the BDD
//! backend.
//!
//! The BDD backend represents a header set as a Boolean function over 104
//! variables. This crate represents the same sets *extensionally*: the
//! 5-tuple space is maintained as a global partition into disjoint interval
//! cubes (**atoms**), refined lazily as rule matches arrive, and a header
//! set is simply the set of atom ids it covers — stored as an interned
//! sorted vector. Set algebra then degenerates to linear merges of sorted
//! id lists: no node allocation, no operation caches, no variable ordering
//! sensitivity.
//!
//! The trade-off mirrors the Delta-net-vs-HSA/BDD discussion: interval
//! atoms excel when rule matches are prefixes and ranges (IP forwarding
//! tables — the VeriDP workload), because `k` distinct matches can create at
//! most `O(k)` interval boundaries per field. They lose to BDDs when sets
//! have dense cross-field correlation structure that intervals must
//! enumerate but a Boolean function can share.
//!
//! # Canonicity
//!
//! [`AtomSpace`] upholds the [`HeaderSetBackend`] canonicity contract —
//! equal handles **iff** equal sets — by interning: every distinct sorted
//! id vector gets exactly one [`AtomSet`] handle. Refinement preserves the
//! contract in place: when atom `a` splits into `a` (the part inside the
//! refining cube) plus fresh atoms `b, c, …` (the parts outside), every
//! interned vector containing `a` is rewritten to also contain `b, c, …`.
//! Handles never change, denotations never change, and distinct sets stay
//! distinct, so handles held by a [`PathTable`](veridp_core::PathTable)
//! remain valid across arbitrary later refinement.

mod cube;
mod partition;

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use veridp_core::HeaderSetBackend;
use veridp_packet::FiveTuple;
use veridp_switch::Match;

pub use cube::{Cube, FIELD_BITS, FIELD_MAX, NUM_FIELDS};
pub use cube::{F_DST_IP, F_DST_PORT, F_PROTO, F_SRC_IP, F_SRC_PORT};
pub use partition::{AtomId, Partition};

/// A canonical handle to an interned header set: equal handles iff equal
/// sets, within one [`AtomSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtomSet(u32);

impl AtomSet {
    /// The empty set (no atoms).
    pub const EMPTY: AtomSet = AtomSet(0);
    /// The full header space (every atom).
    pub const FULL: AtomSet = AtomSet(1);

    /// The raw interner index, for diagnostics.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Import-translation memo: maps source-space set handles to
/// destination-space handles. Reuse one memo across a batch of imports from
/// the same source.
#[derive(Debug, Default)]
pub struct AtomMemo {
    map: HashMap<u32, u32>,
}

/// The atom-partition backend. One instance backs one path table; handles
/// from different instances must not mix (same discipline as BDD managers).
#[derive(Debug, Clone)]
pub struct AtomSpace {
    partition: Partition,
    /// Interned sets: index = handle, value = sorted atom ids. Index 0 is
    /// the empty vector, index 1 the all-atoms vector, maintained under
    /// refinement.
    vecs: Vec<Arc<[AtomId]>>,
    /// Reverse interner: vector → handle.
    ids: HashMap<Arc<[AtomId]>, u32>,
    /// Memoized `from_match` results, keyed with `in_port` normalized away
    /// (the cube ignores it, so distinct in-ports share one entry). Stays
    /// valid under refinement because handles are rewritten in place.
    match_cache: HashMap<Match, AtomSet>,
}

impl AtomSpace {
    /// A fresh space with the trivial one-atom partition.
    pub fn new() -> Self {
        let empty: Arc<[AtomId]> = Arc::from(Vec::new());
        let full: Arc<[AtomId]> = Arc::from(vec![0]);
        let mut ids = HashMap::new();
        ids.insert(empty.clone(), 0);
        ids.insert(full.clone(), 1);
        AtomSpace {
            partition: Partition::new(),
            vecs: vec![empty, full],
            ids,
            match_cache: HashMap::new(),
        }
    }

    /// Current number of atoms — the partition's size metric, the analogue
    /// of the BDD backend's node count.
    pub fn num_atoms(&self) -> usize {
        self.partition.len()
    }

    /// Number of distinct interned sets (diagnostic).
    pub fn num_sets(&self) -> usize {
        self.vecs.len()
    }

    /// The sorted atom ids of a set.
    pub fn set_ids(&self, s: AtomSet) -> &[AtomId] {
        &self.vecs[s.0 as usize]
    }

    /// The cube of one atom.
    pub fn atom_cube(&self, id: AtomId) -> &Cube {
        self.partition.atom(id)
    }

    /// The disjoint cubes whose union denotes `s` — the bridge the
    /// differential test suite uses to rebuild the same set in a BDD space.
    pub fn cubes_of(&self, s: AtomSet) -> Vec<Cube> {
        self.set_ids(s)
            .iter()
            .map(|&id| *self.partition.atom(id))
            .collect()
    }

    /// Read access to the partition (for invariant checks in tests).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Intern a (not necessarily sorted) id vector into a canonical handle.
    fn intern(&mut self, mut v: Vec<AtomId>) -> AtomSet {
        v.sort_unstable();
        v.dedup();
        if v.is_empty() {
            return AtomSet::EMPTY;
        }
        let arc: Arc<[AtomId]> = v.into();
        if let Some(&id) = self.ids.get(&arc) {
            return AtomSet(id);
        }
        let id = self.vecs.len() as u32;
        self.vecs.push(arc.clone());
        self.ids.insert(arc, id);
        AtomSet(id)
    }

    /// Rewrite every interned set for a batch of atom splits: a set that
    /// contained a split parent gains the parent's children, preserving its
    /// denotation exactly. Injective on denotations, so canonicity survives
    /// the interner rebuild.
    fn apply_splits(&mut self, splits: &[(AtomId, Vec<AtomId>)]) {
        if splits.is_empty() {
            return;
        }
        let kids: HashMap<AtomId, &[AtomId]> =
            splits.iter().map(|(p, k)| (*p, k.as_slice())).collect();
        for slot in self.vecs.iter_mut() {
            if !slot.iter().any(|id| kids.contains_key(id)) {
                continue;
            }
            let mut nv: Vec<AtomId> = Vec::with_capacity(slot.len() + splits.len());
            nv.extend_from_slice(slot);
            for id in slot.iter() {
                if let Some(k) = kids.get(id) {
                    nv.extend_from_slice(k);
                }
            }
            nv.sort_unstable();
            *slot = nv.into();
        }
        self.ids.clear();
        for (i, v) in self.vecs.iter().enumerate() {
            self.ids.insert(v.clone(), i as u32);
        }
    }

    /// Refine the partition by one cube and return the handle of the set of
    /// atoms inside it.
    fn refine_and_collect(&mut self, cube: &Cube) -> AtomSet {
        let splits = self.partition.refine(cube);
        self.apply_splits(&splits);
        let ids = self.partition.ids_within(cube);
        self.intern(ids)
    }
}

impl Default for AtomSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// `a ∩ b` on sorted slices.
fn intersect_sorted(a: &[AtomId], b: &[AtomId]) -> Vec<AtomId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// `a ∪ b` on sorted slices.
fn union_sorted(a: &[AtomId], b: &[AtomId]) -> Vec<AtomId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// `a ∖ b` on sorted slices.
fn diff_sorted(a: &[AtomId], b: &[AtomId]) -> Vec<AtomId> {
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out
}

/// `a ⊆ b` on sorted slices.
fn subset_sorted(a: &[AtomId], b: &[AtomId]) -> bool {
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

impl HeaderSetBackend for AtomSpace {
    type Set = AtomSet;
    type Memo = AtomMemo;

    const NAME: &'static str = "atoms";

    fn full(&self) -> AtomSet {
        AtomSet::FULL
    }

    fn empty(&self) -> AtomSet {
        AtomSet::EMPTY
    }

    fn from_match(&mut self, m: &Match) -> AtomSet {
        let mut key = *m;
        key.in_port = None;
        if let Some(&s) = self.match_cache.get(&key) {
            return s;
        }
        let cube = Cube::from_match(&key);
        let s = self.refine_and_collect(&cube);
        self.match_cache.insert(key, s);
        s
    }

    fn and(&mut self, a: AtomSet, b: AtomSet) -> AtomSet {
        if a == b || b == AtomSet::FULL {
            return a;
        }
        if a == AtomSet::FULL {
            return b;
        }
        if a == AtomSet::EMPTY || b == AtomSet::EMPTY {
            return AtomSet::EMPTY;
        }
        let v = intersect_sorted(self.set_ids(a), self.set_ids(b));
        self.intern(v)
    }

    fn or(&mut self, a: AtomSet, b: AtomSet) -> AtomSet {
        if a == b || b == AtomSet::EMPTY {
            return a;
        }
        if a == AtomSet::EMPTY {
            return b;
        }
        if a == AtomSet::FULL || b == AtomSet::FULL {
            return AtomSet::FULL;
        }
        let v = union_sorted(self.set_ids(a), self.set_ids(b));
        self.intern(v)
    }

    fn diff(&mut self, a: AtomSet, b: AtomSet) -> AtomSet {
        if a == b || a == AtomSet::EMPTY || b == AtomSet::FULL {
            return AtomSet::EMPTY;
        }
        if b == AtomSet::EMPTY {
            return a;
        }
        let v = diff_sorted(self.set_ids(a), self.set_ids(b));
        self.intern(v)
    }

    fn is_empty(&self, s: AtomSet) -> bool {
        s == AtomSet::EMPTY
    }

    fn is_full(&self, s: AtomSet) -> bool {
        s == AtomSet::FULL
    }

    fn is_subset(&mut self, a: AtomSet, b: AtomSet) -> bool {
        if a == AtomSet::EMPTY || a == b || b == AtomSet::FULL {
            return true;
        }
        subset_sorted(self.set_ids(a), self.set_ids(b))
    }

    fn contains(&self, s: AtomSet, h: &FiveTuple) -> bool {
        self.set_ids(s)
            .iter()
            .any(|&id| self.partition.atom(id).contains_point(h))
    }

    fn witness(&self, s: AtomSet) -> Option<FiveTuple> {
        self.set_ids(s)
            .first()
            .map(|&id| self.partition.atom(id).lo_point())
    }

    fn random_witness(&self, s: AtomSet, mut pick: impl FnMut(u32) -> bool) -> Option<FiveTuple> {
        let v = self.set_ids(s);
        if v.is_empty() {
            return None;
        }
        // Draw bits through `pick` so the caller's seeded RNG drives the
        // choice, like the BDD backend's random_sat. The u32 argument is an
        // opaque per-draw discriminator.
        let mut draw = |tag: u32, n: u32| -> u64 {
            let mut x = 0u64;
            for i in 0..n {
                x = (x << 1) | pick(tag + i) as u64;
            }
            x
        };
        let cube = {
            let idx = (draw(1000, 24) as usize) % v.len();
            *self.partition.atom(v[idx])
        };
        let mut vals = [0u64; NUM_FIELDS];
        for (f, val) in vals.iter_mut().enumerate() {
            let span = cube.hi[f] - cube.lo[f] + 1;
            *val = cube.lo[f] + draw((f as u32) * 64, FIELD_BITS[f]) % span;
        }
        Some(FiveTuple {
            src_ip: vals[F_SRC_IP] as u32,
            dst_ip: vals[F_DST_IP] as u32,
            proto: vals[F_PROTO] as u8,
            src_port: vals[F_SRC_PORT] as u16,
            dst_port: vals[F_DST_PORT] as u16,
        })
    }

    fn sat_count(&self, s: AtomSet) -> u128 {
        self.set_ids(s)
            .iter()
            .map(|&id| self.partition.atom(id).volume())
            .sum()
    }

    fn size_metric(&self) -> usize {
        self.partition.len()
    }

    fn prepare(&mut self, matches: &[Match]) {
        // Build the whole partition up front: one refinement pass per
        // distinct match, each populating the match cache, so the traversal
        // that follows never refines and every set handle it creates is
        // final. Purely an optimization — correctness never depends on
        // which matches were prepared.
        let mut seen = HashSet::new();
        for m in matches {
            let mut key = *m;
            key.in_port = None;
            if seen.insert(key) {
                self.from_match(&key);
            }
        }
    }

    fn fork_worker(&self) -> Self {
        // A fork shares the parent's full refinement history (same atoms,
        // same interned sets), so parent handles are directly meaningful in
        // the fork — imports between instances with a common history hit
        // the cheap identical-partition path.
        self.clone()
    }

    fn import(&mut self, src: &Self, s: AtomSet, memo: &mut AtomMemo) -> AtomSet {
        if s == AtomSet::EMPTY {
            return AtomSet::EMPTY;
        }
        if let Some(&d) = memo.map.get(&s.0) {
            return AtomSet(d);
        }
        let out = if self.partition.len() == src.partition.len() {
            // Instances that share a refinement history and have refined
            // equally much have *identical* partitions (refinement is
            // deterministic and append-only), so ids carry over verbatim.
            debug_assert!(self.partition.same_cubes(&src.partition));
            self.intern(src.set_ids(s).to_vec())
        } else {
            // General path: re-express each source atom's cube in this
            // partition, refining as needed.
            let mut ids = Vec::new();
            let cubes = src.cubes_of(s);
            for cube in cubes {
                let splits = self.partition.refine(&cube);
                self.apply_splits(&splits);
                ids.extend(self.partition.ids_within(&cube));
            }
            self.intern(ids)
        };
        memo.map.insert(s.0, out.0);
        out
    }
}

#[cfg(test)]
mod tests;
