//! Five-field interval cubes: the geometric primitive under the atom
//! partition.
//!
//! A cube is a product of one inclusive integer range per header field, in
//! the canonical field order (src ip, dst ip, proto, src port, dst port).
//! Every [`Match`](veridp_switch::Match) denotes a cube — prefixes and port
//! ranges are both intervals — and cube subtraction yields at most two
//! pieces per field, which is what keeps lazy refinement cheap.

use veridp_packet::FiveTuple;
use veridp_switch::{prefix_mask, Match};

/// Number of header fields a cube constrains.
pub const NUM_FIELDS: usize = 5;

/// Field indices into [`Cube::lo`] / [`Cube::hi`].
pub const F_SRC_IP: usize = 0;
pub const F_DST_IP: usize = 1;
pub const F_PROTO: usize = 2;
pub const F_SRC_PORT: usize = 3;
pub const F_DST_PORT: usize = 4;

/// Bit width of each field, in canonical order.
pub const FIELD_BITS: [u32; NUM_FIELDS] = [32, 32, 8, 16, 16];

/// Inclusive maximum value of each field.
pub const FIELD_MAX: [u64; NUM_FIELDS] = [
    u32::MAX as u64,
    u32::MAX as u64,
    u8::MAX as u64,
    u16::MAX as u64,
    u16::MAX as u64,
];

/// A non-empty product of inclusive per-field ranges. Invariant:
/// `lo[f] <= hi[f] <= FIELD_MAX[f]` for every field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cube {
    pub lo: [u64; NUM_FIELDS],
    pub hi: [u64; NUM_FIELDS],
}

/// The inclusive value range of an IP prefix.
fn prefix_range(ip: u32, plen: u8) -> (u64, u64) {
    let base = prefix_mask(ip, plen) as u64;
    let span = 0xffff_ffffu64 >> plen;
    (base, base + span)
}

fn point(h: &FiveTuple) -> [u64; NUM_FIELDS] {
    [
        h.src_ip as u64,
        h.dst_ip as u64,
        h.proto as u64,
        h.src_port as u64,
        h.dst_port as u64,
    ]
}

impl Cube {
    /// The whole 104-bit header space.
    pub const FULL: Cube = Cube {
        lo: [0; NUM_FIELDS],
        hi: FIELD_MAX,
    };

    /// The cube denoted by a rule match, *ignoring* its `in_port` qualifier
    /// (in-ports are resolved by the per-port predicate scan, exactly as in
    /// the BDD backend's `match_set`).
    pub fn from_match(m: &Match) -> Cube {
        let mut c = Cube::FULL;
        (c.lo[F_SRC_IP], c.hi[F_SRC_IP]) = prefix_range(m.src_ip, m.src_plen);
        (c.lo[F_DST_IP], c.hi[F_DST_IP]) = prefix_range(m.dst_ip, m.dst_plen);
        if let Some(p) = m.proto {
            c.lo[F_PROTO] = p as u64;
            c.hi[F_PROTO] = p as u64;
        }
        c.lo[F_SRC_PORT] = m.src_port.lo as u64;
        c.hi[F_SRC_PORT] = m.src_port.hi as u64;
        c.lo[F_DST_PORT] = m.dst_port.lo as u64;
        c.hi[F_DST_PORT] = m.dst_port.hi as u64;
        c
    }

    /// Whether the cubes share any point.
    pub fn intersects(&self, o: &Cube) -> bool {
        (0..NUM_FIELDS).all(|f| self.lo[f].max(o.lo[f]) <= self.hi[f].min(o.hi[f]))
    }

    /// The common sub-cube, if any.
    pub fn intersect(&self, o: &Cube) -> Option<Cube> {
        let mut r = Cube {
            lo: [0; NUM_FIELDS],
            hi: [0; NUM_FIELDS],
        };
        for f in 0..NUM_FIELDS {
            r.lo[f] = self.lo[f].max(o.lo[f]);
            r.hi[f] = self.hi[f].min(o.hi[f]);
            if r.lo[f] > r.hi[f] {
                return None;
            }
        }
        Some(r)
    }

    /// Whether `o` lies entirely inside `self`.
    pub fn contains_cube(&self, o: &Cube) -> bool {
        (0..NUM_FIELDS).all(|f| self.lo[f] <= o.lo[f] && o.hi[f] <= self.hi[f])
    }

    /// Whether the concrete header lies in the cube.
    pub fn contains_point(&self, h: &FiveTuple) -> bool {
        let p = point(h);
        (0..NUM_FIELDS).all(|f| self.lo[f] <= p[f] && p[f] <= self.hi[f])
    }

    /// Split `self` against `m`: returns the core `self ∩ m` (if non-empty)
    /// and the pieces of `self ∖ m` as disjoint cubes — the standard slab
    /// decomposition, at most two pieces per field, whose union with the
    /// core is exactly `self`.
    pub fn split(&self, m: &Cube) -> (Option<Cube>, Vec<Cube>) {
        let Some(core) = self.intersect(m) else {
            return (None, vec![*self]);
        };
        let mut pieces = Vec::new();
        let mut cur = *self;
        for f in 0..NUM_FIELDS {
            if cur.lo[f] < core.lo[f] {
                let mut p = cur;
                p.hi[f] = core.lo[f] - 1;
                pieces.push(p);
                cur.lo[f] = core.lo[f];
            }
            if cur.hi[f] > core.hi[f] {
                let mut p = cur;
                p.lo[f] = core.hi[f] + 1;
                pieces.push(p);
                cur.hi[f] = core.hi[f];
            }
        }
        debug_assert_eq!(cur, core);
        (Some(core), pieces)
    }

    /// Number of concrete headers in the cube (at most `2^104`).
    pub fn volume(&self) -> u128 {
        (0..NUM_FIELDS)
            .map(|f| (self.hi[f] - self.lo[f] + 1) as u128)
            .product()
    }

    /// The lexicographically smallest header of the cube — a deterministic
    /// witness.
    pub fn lo_point(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.lo[F_SRC_IP] as u32,
            dst_ip: self.lo[F_DST_IP] as u32,
            proto: self.lo[F_PROTO] as u8,
            src_port: self.lo[F_SRC_PORT] as u16,
            dst_port: self.lo[F_DST_PORT] as u16,
        }
    }
}
