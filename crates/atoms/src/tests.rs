use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use veridp_core::HeaderSetBackend;
use veridp_packet::{FiveTuple, PortNo};
use veridp_switch::{Match, PortRange};

use crate::{AtomMemo, AtomSet, AtomSpace, Cube, NUM_FIELDS};

/// Full-space cardinality: 2^104.
const FULL_VOLUME: u128 = 1u128 << 104;

fn random_match(rng: &mut StdRng) -> Match {
    let mut m = Match::ANY;
    let dst_plen = rng.gen_range(0u8..=28);
    m.dst_ip = veridp_switch::prefix_mask(rng.gen::<u32>(), dst_plen);
    m.dst_plen = dst_plen;
    if rng.gen_bool(0.4) {
        let src_plen = rng.gen_range(1u8..=24);
        m.src_ip = veridp_switch::prefix_mask(rng.gen::<u32>(), src_plen);
        m.src_plen = src_plen;
    }
    if rng.gen_bool(0.3) {
        m.proto = Some(if rng.gen_bool(0.5) { 6 } else { 17 });
    }
    if rng.gen_bool(0.25) {
        let lo = rng.gen_range(0u16..1000);
        let hi = rng.gen_range(lo..=lo.saturating_add(2000));
        m.dst_port = PortRange::new(lo, hi);
    }
    if rng.gen_bool(0.1) {
        m.src_port = PortRange::exact(rng.gen::<u16>());
    }
    m
}

fn random_header(rng: &mut StdRng) -> FiveTuple {
    FiveTuple {
        src_ip: rng.gen(),
        dst_ip: rng.gen(),
        proto: match rng.gen_range(0u8..4) {
            0 => 6,
            1 => 17,
            other => other,
        },
        src_port: rng.gen(),
        dst_port: rng.gen(),
    }
}

/// Check the partition invariants: atoms are pairwise disjoint and cover
/// the full space.
fn assert_partition(hs: &AtomSpace) {
    let atoms: Vec<Cube> = hs.partition().iter().copied().collect();
    let total: u128 = atoms.iter().map(Cube::volume).sum();
    assert_eq!(
        total, FULL_VOLUME,
        "atoms must cover the full space exactly"
    );
    // Volume equality plus pairwise disjointness is equivalent to a
    // partition; check disjointness directly for small partitions.
    if atoms.len() <= 256 {
        for (i, a) in atoms.iter().enumerate() {
            for b in &atoms[..i] {
                assert!(!a.intersects(b), "atoms {a:?} and {b:?} overlap");
            }
        }
    }
    // FULL must always denote every atom.
    assert_eq!(hs.set_ids(AtomSet::FULL).len(), atoms.len());
}

#[test]
fn trivial_space_is_one_full_atom() {
    let hs = AtomSpace::new();
    assert_eq!(hs.num_atoms(), 1);
    assert_eq!(hs.sat_count(AtomSet::FULL), FULL_VOLUME);
    assert_eq!(hs.sat_count(AtomSet::EMPTY), 0);
    assert_partition(&hs);
}

#[test]
fn partition_invariants_hold_under_random_refinement() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xA70A + seed);
        let mut hs = AtomSpace::new();
        for _ in 0..20 {
            let m = random_match(&mut rng);
            hs.from_match(&m);
            assert_partition(&hs);
        }
    }
}

#[test]
fn from_match_denotes_the_match_predicate() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xBEEF + seed);
        let mut hs = AtomSpace::new();
        let matches: Vec<Match> = (0..12).map(|_| random_match(&mut rng)).collect();
        let sets: Vec<AtomSet> = matches.iter().map(|m| hs.from_match(m)).collect();
        let port = PortNo(1);
        for _ in 0..200 {
            let h = random_header(&mut rng);
            for (m, &s) in matches.iter().zip(&sets) {
                assert_eq!(
                    hs.contains(s, &h),
                    m.matches(port, &h),
                    "membership mismatch for {m:?} on {h}"
                );
            }
        }
        // Boundary points: every atom's low corner must classify correctly
        // too (random headers rarely land on interval edges).
        for id in 0..hs.num_atoms() as u32 {
            let h = hs.atom_cube(id).lo_point();
            for (m, &s) in matches.iter().zip(&sets) {
                assert_eq!(hs.contains(s, &h), m.matches(port, &h));
            }
        }
    }
}

#[test]
fn refinement_preserves_denotations_of_live_handles() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xF00D + seed);
        let mut hs = AtomSpace::new();
        let probes: Vec<FiveTuple> = (0..64).map(|_| random_header(&mut rng)).collect();
        // Build some handles, snapshot their denotations.
        let mut live: Vec<(AtomSet, u128, Vec<bool>)> = Vec::new();
        for round in 0..15 {
            let m = random_match(&mut rng);
            let s = hs.from_match(&m);
            let extra = if round % 3 == 0 {
                let t = hs.from_match(&random_match(&mut rng));
                hs.or(s, t)
            } else {
                let t = hs.from_match(&random_match(&mut rng));
                hs.diff(s, t)
            };
            for set in [s, extra] {
                let members = probes.iter().map(|h| hs.contains(set, h)).collect();
                live.push((set, hs.sat_count(set), members));
            }
            // Every previously snapshotted handle must still denote the
            // same set, no matter how much the partition refined since.
            for (set, count, members) in &live {
                assert_eq!(hs.sat_count(*set), *count, "sat_count drifted");
                for (h, &was) in probes.iter().zip(members) {
                    assert_eq!(hs.contains(*set, h), was, "membership drifted");
                }
            }
        }
        assert_partition(&hs);
    }
}

#[test]
fn handles_are_canonical() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xCA11 + seed);
        let mut hs = AtomSpace::new();
        let a = hs.from_match(&random_match(&mut rng));
        let b = hs.from_match(&random_match(&mut rng));
        let c = hs.from_match(&random_match(&mut rng));

        // Algebraic identities must hold as handle equalities.
        assert_eq!(hs.and(a, b), hs.and(b, a));
        assert_eq!(hs.or(a, b), hs.or(b, a));
        let ab = hs.or(a, b);
        let lhs = hs.and(ab, c);
        let ac = hs.and(a, c);
        let bc = hs.and(b, c);
        let rhs = hs.or(ac, bc);
        assert_eq!(lhs, rhs, "distributivity as handle equality");
        let d = hs.diff(a, b);
        let d2 = {
            let anb = hs.and(a, b);
            hs.diff(a, anb)
        };
        assert_eq!(d, d2);
        // a = (a∖b) ∪ (a∩b), reconstructed, interns to the same handle.
        let anb = hs.and(a, b);
        assert_eq!(hs.or(d, anb), a);
        // Complement round-trip through FULL.
        let not_a = hs.diff(AtomSet::FULL, a);
        let back = hs.diff(AtomSet::FULL, not_a);
        assert_eq!(back, a);
        assert_eq!(hs.or(a, not_a), AtomSet::FULL);
        assert_eq!(hs.and(a, not_a), AtomSet::EMPTY);
    }
}

#[test]
fn sat_count_and_subset_agree_with_algebra() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x5A7 + seed);
        let mut hs = AtomSpace::new();
        let a = hs.from_match(&random_match(&mut rng));
        let b = hs.from_match(&random_match(&mut rng));
        let both = hs.and(a, b);
        let either = hs.or(a, b);
        let only_a = hs.diff(a, b);
        // Inclusion–exclusion.
        assert_eq!(
            hs.sat_count(either),
            hs.sat_count(a) + hs.sat_count(b) - hs.sat_count(both)
        );
        assert_eq!(hs.sat_count(only_a), hs.sat_count(a) - hs.sat_count(both));
        assert!(hs.is_subset(both, a) && hs.is_subset(both, b));
        assert!(hs.is_subset(a, either) && hs.is_subset(b, either));
        assert!(hs.is_subset(only_a, a));
        assert_eq!(hs.is_subset(a, b), hs.and(a, b) == a);
    }
}

#[test]
fn witnesses_are_members() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x717 + seed);
        let mut hs = AtomSpace::new();
        for _ in 0..10 {
            let s = hs.from_match(&random_match(&mut rng));
            if hs.is_empty(s) {
                continue;
            }
            let w = hs.witness(s).expect("non-empty set has a witness");
            assert!(hs.contains(s, &w));
            let rw = hs
                .random_witness(s, |_| rng.gen_bool(0.5))
                .expect("non-empty set has a random witness");
            assert!(hs.contains(s, &rw));
        }
        assert!(hs.witness(AtomSet::EMPTY).is_none());
        assert!(hs.random_witness(AtomSet::EMPTY, |_| true).is_none());
    }
}

#[test]
fn prepare_is_semantically_invisible() {
    // A space that prepared all matches up front and a space that refined
    // lazily must agree on every denotation (handles may differ).
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0x9E9 + seed);
        let matches: Vec<Match> = (0..15).map(|_| random_match(&mut rng)).collect();
        let mut eager = AtomSpace::new();
        eager.prepare(&matches);
        let eager_atoms = eager.num_atoms();
        let mut lazy = AtomSpace::new();
        let probes: Vec<FiveTuple> = (0..100).map(|_| random_header(&mut rng)).collect();
        for m in &matches {
            let se = eager.from_match(m);
            let sl = lazy.from_match(m);
            assert_eq!(eager.sat_count(se), lazy.sat_count(sl));
            for h in &probes {
                assert_eq!(eager.contains(se, h), lazy.contains(sl, h));
            }
        }
        // Preparing already-seen matches must not refine further.
        assert_eq!(eager.num_atoms(), eager_atoms);
        assert_eq!(lazy.num_atoms(), eager_atoms);
    }
}

#[test]
fn import_preserves_denotation_across_instances() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xD1FF + seed);
        let mut src = AtomSpace::new();
        let sets: Vec<AtomSet> = (0..8)
            .map(|_| {
                let a = src.from_match(&random_match(&mut rng));
                let b = src.from_match(&random_match(&mut rng));
                src.or(a, b)
            })
            .collect();
        let probes: Vec<FiveTuple> = (0..100).map(|_| random_header(&mut rng)).collect();

        // Fork (shared history): the fast identical-partition path.
        let mut fork = src.fork_worker();
        let mut memo = AtomMemo::default();
        for &s in &sets {
            let t = fork.import(&src, s, &mut memo);
            assert_eq!(fork.sat_count(t), src.sat_count(s));
            for h in &probes {
                assert_eq!(fork.contains(t, h), src.contains(s, h));
            }
        }

        // Fresh instance (no shared history): the general path.
        let mut fresh = AtomSpace::new();
        // Give it an unrelated refinement first, so partitions diverge.
        fresh.from_match(&random_match(&mut rng));
        let mut memo = AtomMemo::default();
        let imported: Vec<AtomSet> = sets
            .iter()
            .map(|&s| fresh.import(&src, s, &mut memo))
            .collect();
        for (&s, &t) in sets.iter().zip(&imported) {
            assert_eq!(fresh.sat_count(t), src.sat_count(s));
            for h in &probes {
                assert_eq!(fresh.contains(t, h), src.contains(s, h));
            }
        }
        // Memoized: importing again returns identical handles.
        for (&s, &t) in sets.iter().zip(&imported) {
            assert_eq!(fresh.import(&src, s, &mut memo), t);
        }
        assert_partition(&fresh);
    }
}

#[test]
fn cubes_of_partitions_the_set() {
    let mut rng = StdRng::seed_from_u64(0xC0BE);
    let mut hs = AtomSpace::new();
    let a = hs.from_match(&random_match(&mut rng));
    let b = hs.from_match(&random_match(&mut rng));
    let s = hs.or(a, b);
    let cubes = hs.cubes_of(s);
    let total: u128 = cubes.iter().map(Cube::volume).sum();
    assert_eq!(total, hs.sat_count(s), "cubes are disjoint and exhaustive");
    for (i, c) in cubes.iter().enumerate() {
        for d in &cubes[..i] {
            assert!(!c.intersects(d));
        }
    }
}

#[test]
fn cube_split_partitions_the_cube() {
    let mut rng = StdRng::seed_from_u64(0x5B117);
    for _ in 0..200 {
        let a = Cube::from_match(&random_match(&mut rng));
        let b = Cube::from_match(&random_match(&mut rng));
        let (core, pieces) = a.split(&b);
        let mut vol = pieces.iter().map(Cube::volume).sum::<u128>();
        if let Some(c) = core {
            vol += c.volume();
            assert!(b.contains_cube(&c));
            assert!(a.contains_cube(&c));
        }
        assert_eq!(vol, a.volume(), "split must partition the cube");
        for (i, p) in pieces.iter().enumerate() {
            assert!(!p.intersects(&b), "piece must be outside the splitter");
            assert!(a.contains_cube(p));
            for q in &pieces[..i] {
                assert!(!p.intersects(q), "pieces must be disjoint");
            }
            if let Some(c) = core {
                assert!(!p.intersects(&c));
            }
        }
    }
}

#[test]
fn path_table_builds_on_atoms_backend() {
    use std::collections::HashMap;
    use veridp_core::PathTable;
    use veridp_switch::{Action, FlowRule};
    use veridp_topo::gen;

    // Two-switch chain forwarding 10.0.2.0/24 — the crate-level example of
    // veridp-core, run on the atom backend instead of the BDD one.
    let topo = gen::linear(2);
    let mut rules: HashMap<veridp_packet::SwitchId, Vec<FlowRule>> = HashMap::new();
    let m = Match::dst_prefix(gen::ip(10, 0, 2, 0), 24);
    rules.insert(
        veridp_packet::SwitchId(1),
        vec![FlowRule::new(1, 24, m, Action::Forward(PortNo(2)))],
    );
    rules.insert(
        veridp_packet::SwitchId(2),
        vec![FlowRule::new(2, 24, m, Action::Forward(PortNo(2)))],
    );

    let mut hs = AtomSpace::new();
    let table: PathTable<AtomSpace> = PathTable::build(&topo, &rules, &mut hs, 16);
    assert!(table.stats().num_pairs > 0);
    // The sequential and sharded builds agree on the atom backend too.
    let mut hs2 = AtomSpace::new();
    let par: PathTable<AtomSpace> = PathTable::build_parallel(&topo, &rules, &mut hs2, 16, 2);
    assert_eq!(table.stats().num_pairs, par.stats().num_pairs);
    assert_eq!(table.stats().num_paths, par.stats().num_paths);
}

#[test]
fn field_constants_are_consistent() {
    assert_eq!(NUM_FIELDS, 5);
    let full = Cube::FULL;
    assert_eq!(full.volume(), FULL_VOLUME);
}
