//! The global atom partition.
//!
//! Following Delta-net's central idea, the header space is maintained as a
//! dynamic partition into *atoms*: pairwise-disjoint cubes whose union is
//! the full space. Atoms are only ever **split**, never merged or moved, so
//! an atom id, once issued, forever denotes a subset of what it denoted
//! before — this is what lets interned atom-id sets be rewritten in place
//! when the partition refines.

use crate::cube::Cube;

/// Index of an atom in the partition.
pub type AtomId = u32;

/// The partition: `atoms[i]` is the current cube of atom `i`. Starts as one
/// full-space atom and refines lazily as rule matches arrive.
#[derive(Debug, Clone)]
pub struct Partition {
    atoms: Vec<Cube>,
}

impl Partition {
    /// The trivial one-atom partition of the full space.
    pub fn new() -> Self {
        Partition {
            atoms: vec![Cube::FULL],
        }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the partition is still the trivial one.
    pub fn is_empty(&self) -> bool {
        false // a partition always covers the full space
    }

    /// The cube of atom `id`.
    pub fn atom(&self, id: AtomId) -> &Cube {
        &self.atoms[id as usize]
    }

    /// Iterate all atom cubes in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Cube> {
        self.atoms.iter()
    }

    /// Refine the partition so every atom is either inside `m` or disjoint
    /// from it. Each straddling atom keeps its id for the inside part
    /// (`atom ∩ m`) and spawns fresh ids for the outside pieces; the
    /// returned list maps each split parent to its new children, which the
    /// set interner uses to rewrite denotations in place.
    pub fn refine(&mut self, m: &Cube) -> Vec<(AtomId, Vec<AtomId>)> {
        let mut splits = Vec::new();
        let n = self.atoms.len();
        for i in 0..n {
            let a = self.atoms[i];
            if !a.intersects(m) || m.contains_cube(&a) {
                continue;
            }
            let (core, pieces) = a.split(m);
            let core = core.expect("intersecting cubes have a core");
            self.atoms[i] = core;
            let mut kids = Vec::with_capacity(pieces.len());
            for p in pieces {
                kids.push(self.atoms.len() as AtomId);
                self.atoms.push(p);
            }
            splits.push((i as AtomId, kids));
        }
        splits
    }

    /// The sorted ids of all atoms inside `m`. Only meaningful after
    /// `refine(m)`: refinement guarantees no atom straddles `m`'s boundary.
    pub fn ids_within(&self, m: &Cube) -> Vec<AtomId> {
        (0..self.atoms.len() as AtomId)
            .filter(|&i| m.contains_cube(&self.atoms[i as usize]))
            .collect()
    }

    /// Whether two partitions consist of identical cubes in identical order
    /// (true for instances that share a refinement history, e.g. a fork and
    /// its parent).
    pub fn same_cubes(&self, o: &Partition) -> bool {
        self.atoms == o.atoms
    }
}

impl Default for Partition {
    fn default() -> Self {
        Self::new()
    }
}
