//! Intent compilation: from [`Intent`] to per-switch logical rules and the
//! OpenFlow messages installing them.

use std::collections::BTreeMap;

use veridp_packet::{PortNo, PortRef, SwitchId};
use veridp_switch::{Action, FlowRule, Match, OfMessage, PortRange, RuleId};
use veridp_topo::{Host, HostRole, Topology};

use crate::intent::Intent;

/// Priority bands. Connectivity rules use the prefix length itself
/// (longest-prefix-match via priority); policy rules sit above all of them.
const PRIO_TE: u16 = 100;
const PRIO_WAYPOINT: u16 = 150;
const PRIO_ACL: u16 = 200;

/// Errors from intent compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerError {
    UnknownHost(String),
    NotAMiddlebox(String),
    /// A traffic-engineering path is not a connected switch sequence from the
    /// source's switch to the destination's switch.
    BadPath(String),
    Disconnected(SwitchId, SwitchId),
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::UnknownHost(h) => write!(f, "unknown host {h}"),
            ControllerError::NotAMiddlebox(h) => write!(f, "{h} is not a middlebox"),
            ControllerError::BadPath(why) => write!(f, "bad TE path: {why}"),
            ControllerError::Disconnected(a, b) => write!(f, "no path from {a} to {b}"),
        }
    }
}

impl std::error::Error for ControllerError {}

/// The SDN controller: compiles intents, owns the logical rule set `R`, and
/// emits the FlowMod/Barrier stream that installs it.
#[derive(Debug, Clone)]
pub struct Controller {
    topo: Topology,
    rules: BTreeMap<SwitchId, Vec<FlowRule>>,
    pending: Vec<(SwitchId, OfMessage)>,
    next_id: u64,
    next_xid: u64,
}

impl Controller {
    /// A controller managing `topo` with an empty rule set.
    pub fn new(topo: Topology) -> Self {
        Controller {
            topo,
            rules: BTreeMap::new(),
            pending: Vec::new(),
            next_id: 1,
            next_xid: 1,
        }
    }

    /// The managed topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The logical rule set `R`, per switch — what the VeriDP server builds
    /// its path table from.
    pub fn logical_rules(&self) -> &BTreeMap<SwitchId, Vec<FlowRule>> {
        &self.rules
    }

    /// All logical rules of one switch.
    pub fn rules_of(&self, s: SwitchId) -> &[FlowRule] {
        self.rules.get(&s).map_or(&[], |v| v.as_slice())
    }

    /// Add one rule to the logical set and queue its FlowMod.
    pub fn add_rule(
        &mut self,
        s: SwitchId,
        priority: u16,
        fields: Match,
        action: Action,
    ) -> RuleId {
        let rule = FlowRule::new(self.next_id, priority, fields, action);
        self.next_id += 1;
        self.rules.entry(s).or_default().push(rule);
        self.pending.push((s, OfMessage::FlowAdd(rule)));
        rule.id
    }

    /// Remove a rule from the logical set and queue its deletion.
    pub fn remove_rule(&mut self, s: SwitchId, id: RuleId) -> Option<FlowRule> {
        let list = self.rules.get_mut(&s)?;
        let pos = list.iter().position(|r| r.id == id)?;
        let rule = list.remove(pos);
        self.pending.push((s, OfMessage::FlowDelete(id)));
        Some(rule)
    }

    /// Change a rule's action in the logical set and queue the FlowModify.
    pub fn modify_rule(&mut self, s: SwitchId, id: RuleId, action: Action) -> bool {
        let Some(rule) = self
            .rules
            .get_mut(&s)
            .and_then(|v| v.iter_mut().find(|r| r.id == id))
        else {
            return false;
        };
        rule.action = action;
        self.pending.push((s, OfMessage::FlowModify(id, action)));
        true
    }

    /// Drain queued messages, appending a Barrier for every switch touched
    /// (the controller's installation transaction).
    pub fn drain_messages(&mut self) -> Vec<(SwitchId, OfMessage)> {
        let mut msgs = std::mem::take(&mut self.pending);
        let mut touched: Vec<SwitchId> = msgs.iter().map(|(s, _)| *s).collect();
        touched.sort();
        touched.dedup();
        for s in touched {
            msgs.push((s, OfMessage::Barrier(self.next_xid)));
            self.next_xid += 1;
        }
        msgs
    }

    fn host(&self, name: &str) -> Result<Host, ControllerError> {
        self.topo
            .host(name)
            .cloned()
            .ok_or_else(|| ControllerError::UnknownHost(name.into()))
    }

    /// Compile one intent into rules (queued for installation).
    pub fn install_intent(&mut self, intent: &Intent) -> Result<Vec<RuleId>, ControllerError> {
        match intent {
            Intent::Connectivity => Ok(self.compile_connectivity()),
            Intent::Acl {
                src_host,
                dst_host,
                dst_ports,
            } => self.compile_acl(src_host, dst_host, *dst_ports),
            Intent::Waypoint {
                src_host,
                dst_host,
                via,
            } => self.compile_waypoint(src_host, dst_host, via),
            Intent::TrafficEngineering {
                src_host,
                dst_host,
                path_a,
                path_b,
            } => self.compile_te(src_host, dst_host, path_a, path_b),
        }
    }

    /// Shortest-path forwarding towards every host subnet, from every switch.
    /// Rule priority is the prefix length, giving longest-prefix-match.
    fn compile_connectivity(&mut self) -> Vec<RuleId> {
        let mut out = Vec::new();
        let hosts: Vec<Host> = self
            .topo
            .hosts()
            .iter()
            .filter(|h| h.role == HostRole::Host)
            .cloned()
            .collect();
        let switches: Vec<SwitchId> = self.topo.switches().map(|s| s.id).collect();
        for h in &hosts {
            let subnet = veridp_switch::prefix_mask(h.ip, h.plen);
            let fields = Match::dst_prefix(subnet, h.plen);
            let target = h.attached.switch;
            for &s in &switches {
                let action = if s == target {
                    Action::Forward(h.attached.port)
                } else {
                    let Some(path) = self.topo.shortest_path(s, target) else {
                        continue;
                    };
                    let next = path[1];
                    let Some(port) = self.topo.port_towards(s, next) else {
                        continue;
                    };
                    Action::Forward(port)
                };
                out.push(self.add_rule(s, h.plen as u16, fields, action));
            }
        }
        out
    }

    /// Drop rules at the source's edge switch (ingress filtering).
    fn compile_acl(
        &mut self,
        src: &str,
        dst: &str,
        dst_ports: PortRange,
    ) -> Result<Vec<RuleId>, ControllerError> {
        let src = self.host(src)?;
        let dst = self.host(dst)?;
        let mut fields = Match::src_prefix(src.ip, src.plen);
        let dm = Match::dst_prefix(dst.ip, dst.plen);
        fields.dst_ip = dm.dst_ip;
        fields.dst_plen = dm.dst_plen;
        fields.dst_port = dst_ports;
        let id = self.add_rule(src.attached.switch, PRIO_ACL, fields, Action::Drop);
        Ok(vec![id])
    }

    /// Pin a hop-by-hop path with in-port-qualified rules. `arrive_port` is
    /// the in-port at the first switch of `path`.
    fn pin_path(
        &mut self,
        fields: Match,
        priority: u16,
        path: &[SwitchId],
        mut arrive_port: PortNo,
        final_port: PortNo,
    ) -> Result<Vec<RuleId>, ControllerError> {
        let mut out = Vec::new();
        for (i, &s) in path.iter().enumerate() {
            let out_port = if i + 1 < path.len() {
                let next = path[i + 1];
                self.topo
                    .port_towards(s, next)
                    .ok_or(ControllerError::Disconnected(s, next))?
            } else {
                final_port
            };
            let f = fields.with_in_port(arrive_port);
            out.push(self.add_rule(s, priority, f, Action::Forward(out_port)));
            if i + 1 < path.len() {
                let here = PortRef {
                    switch: s,
                    port: out_port,
                };
                let peer = self
                    .topo
                    .peer(here)
                    .ok_or(ControllerError::Disconnected(s, path[i + 1]))?;
                arrive_port = peer.port;
            }
        }
        Ok(out)
    }

    /// Waypoint chaining: route src→middlebox, then middlebox→dst, with
    /// in-port-qualified rules so the two legs cannot interfere even when
    /// they share switches.
    fn compile_waypoint(
        &mut self,
        src: &str,
        dst: &str,
        via: &str,
    ) -> Result<Vec<RuleId>, ControllerError> {
        let src = self.host(src)?;
        let dst = self.host(dst)?;
        let mb = self.host(via)?;
        if mb.role != HostRole::Middlebox {
            return Err(ControllerError::NotAMiddlebox(mb.name));
        }

        let mut fields = Match::src_prefix(src.ip, src.plen);
        let dm = Match::dst_prefix(dst.ip, dst.plen);
        fields.dst_ip = dm.dst_ip;
        fields.dst_plen = dm.dst_plen;

        let s_src = src.attached.switch;
        let s_mb = mb.attached.switch;
        let s_dst = dst.attached.switch;

        let leg1 = self
            .topo
            .shortest_path(s_src, s_mb)
            .ok_or(ControllerError::Disconnected(s_src, s_mb))?;
        let leg2 = self
            .topo
            .shortest_path(s_mb, s_dst)
            .ok_or(ControllerError::Disconnected(s_mb, s_dst))?;

        let mut ids = self.pin_path(
            fields,
            PRIO_WAYPOINT,
            &leg1,
            src.attached.port,
            mb.attached.port,
        )?;
        ids.extend(self.pin_path(
            fields,
            PRIO_WAYPOINT,
            &leg2,
            mb.attached.port,
            dst.attached.port,
        )?);
        Ok(ids)
    }

    /// Two-path traffic engineering split on the L4 source-port space.
    fn compile_te(
        &mut self,
        src: &str,
        dst: &str,
        path_a: &[u32],
        path_b: &[u32],
    ) -> Result<Vec<RuleId>, ControllerError> {
        let src = self.host(src)?;
        let dst = self.host(dst)?;
        let mut fields = Match::src_prefix(src.ip, src.plen);
        let dm = Match::dst_prefix(dst.ip, dst.plen);
        fields.dst_ip = dm.dst_ip;
        fields.dst_plen = dm.dst_plen;

        let mut ids = Vec::new();
        for (path, range) in [
            (path_a, PortRange::new(0, 0x7fff)),
            (path_b, PortRange::new(0x8000, u16::MAX)),
        ] {
            let path: Vec<SwitchId> = path.iter().map(|&s| SwitchId(s)).collect();
            if path.first() != Some(&src.attached.switch)
                || path.last() != Some(&dst.attached.switch)
            {
                return Err(ControllerError::BadPath(
                    "path must run from the source's switch to the destination's switch".into(),
                ));
            }
            let mut f = fields;
            f.src_port = range;
            ids.extend(self.pin_path(f, PRIO_TE, &path, src.attached.port, dst.attached.port)?);
        }
        Ok(ids)
    }
}
