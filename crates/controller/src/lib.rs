//! The SDN control plane.
//!
//! The controller owns the *logical rules* `R` of the paper's four-stage
//! pipeline (operator intent `I` → logical rules `R` → physical rules `R'` →
//! forwarding `F`, §2.1). It compiles high-level [`Intent`]s — connectivity,
//! access control, waypoint traversal, traffic engineering (§2.3) — into
//! per-switch flow rules and emits the OpenFlow messages that install them.
//!
//! VeriDP's server is wired as an interceptor on that message stream (§3.2):
//! everything the controller sends is also what the path table is built from,
//! so `R = F` is exactly what tag verification checks.
//!
//! The [`synth`] module generates the synthetic rule workloads standing in
//! for the Stanford/Internet2 configuration files (see DESIGN.md for the
//! substitution argument).

mod compiler;
mod intent;
pub mod synth;

pub use compiler::{Controller, ControllerError};
pub use intent::Intent;

#[cfg(test)]
mod tests;
