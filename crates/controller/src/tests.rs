use veridp_packet::{FiveTuple, PortNo, SwitchId};
use veridp_switch::{Action, Match, OfMessage, PortRange, RuleId};
use veridp_topo::gen::{self, ip};

use crate::{synth, Controller, ControllerError, Intent};

fn connectivity_controller(topo: veridp_topo::Topology) -> Controller {
    let mut c = Controller::new(topo);
    c.install_intent(&Intent::Connectivity).unwrap();
    c
}

#[test]
fn connectivity_compiles_rules_on_every_switch() {
    let c = connectivity_controller(gen::figure5());
    // 3 hosts × 3 switches = 9 rules (middlebox owns no subnet rules).
    let total: usize = c.logical_rules().values().map(Vec::len).sum();
    assert_eq!(total, 9);
    for s in [1u32, 2, 3] {
        assert_eq!(c.rules_of(SwitchId(s)).len(), 3);
    }
}

#[test]
fn connectivity_rules_deliver_locally_and_forward_remotely() {
    let c = connectivity_controller(gen::figure5());
    // On S1, the rule towards H3 (10.0.2.0/24 on S3) must forward out a port
    // towards S3 (port 4 direct, or 3 via S2 — BFS gives the direct link).
    let r = c
        .rules_of(SwitchId(1))
        .iter()
        .find(|r| r.fields.dst_ip == ip(10, 0, 2, 0))
        .unwrap();
    assert_eq!(r.action, Action::Forward(PortNo(4)));
    // On S3, the same subnet delivers to the host port 2.
    let r3 = c
        .rules_of(SwitchId(3))
        .iter()
        .find(|r| r.fields.dst_ip == ip(10, 0, 2, 0))
        .unwrap();
    assert_eq!(r3.action, Action::Forward(PortNo(2)));
}

#[test]
fn drain_messages_appends_barriers() {
    let mut c = connectivity_controller(gen::linear(2));
    let msgs = c.drain_messages();
    let barriers = msgs
        .iter()
        .filter(|(_, m)| matches!(m, OfMessage::Barrier(_)))
        .count();
    assert_eq!(barriers, 2, "one barrier per touched switch");
    // FlowAdds precede barriers.
    let first_barrier = msgs
        .iter()
        .position(|(_, m)| matches!(m, OfMessage::Barrier(_)))
        .unwrap();
    assert!(msgs[..first_barrier]
        .iter()
        .all(|(_, m)| matches!(m, OfMessage::FlowAdd(_))));
    // Draining again yields nothing.
    assert!(c.drain_messages().is_empty());
}

#[test]
fn rule_ids_are_unique() {
    let c = connectivity_controller(gen::fat_tree(4));
    let mut ids: Vec<RuleId> = c.logical_rules().values().flatten().map(|r| r.id).collect();
    let n = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), n);
}

#[test]
fn remove_and_modify_rule_update_logical_set() {
    let mut c = Controller::new(gen::linear(2));
    let id = c.add_rule(SwitchId(1), 5, Match::ANY, Action::Forward(PortNo(2)));
    assert!(c.modify_rule(SwitchId(1), id, Action::Drop));
    assert_eq!(c.rules_of(SwitchId(1))[0].action, Action::Drop);
    let removed = c.remove_rule(SwitchId(1), id).unwrap();
    assert_eq!(removed.id, id);
    assert!(c.rules_of(SwitchId(1)).is_empty());
    assert!(!c.modify_rule(SwitchId(1), id, Action::Drop));
    let msgs = c.drain_messages();
    assert!(msgs
        .iter()
        .any(|(_, m)| matches!(m, OfMessage::FlowModify(..))));
    assert!(msgs
        .iter()
        .any(|(_, m)| matches!(m, OfMessage::FlowDelete(_))));
}

#[test]
fn acl_installs_drop_at_source_switch() {
    let mut c = connectivity_controller(gen::figure5());
    let ids = c
        .install_intent(&Intent::Acl {
            src_host: "H2".into(),
            dst_host: "H3".into(),
            dst_ports: PortRange::exact(22),
        })
        .unwrap();
    assert_eq!(ids.len(), 1);
    // H2 sits on S1; the deny rule must outrank connectivity there.
    let rule = c
        .rules_of(SwitchId(1))
        .iter()
        .find(|r| r.id == ids[0])
        .unwrap();
    assert_eq!(rule.action, Action::Drop);
    assert!(rule.priority > 32);
    assert!(rule.fields.matches(
        PortNo(2),
        &FiveTuple::tcp(ip(10, 0, 1, 2), ip(10, 0, 2, 1), 999, 22)
    ));
    assert!(!rule.fields.matches(
        PortNo(2),
        &FiveTuple::tcp(ip(10, 0, 1, 2), ip(10, 0, 2, 1), 999, 80)
    ));
}

#[test]
fn acl_unknown_host_errors() {
    let mut c = Controller::new(gen::figure5());
    let err = c
        .install_intent(&Intent::Acl {
            src_host: "nope".into(),
            dst_host: "H3".into(),
            dst_ports: PortRange::ANY,
        })
        .unwrap_err();
    assert_eq!(err, ControllerError::UnknownHost("nope".into()));
}

#[test]
fn waypoint_routes_through_middlebox() {
    // Figure 5: H1 → MB (on S2) → H3, as in the worked example of §4.2.
    let mut c = Controller::new(gen::figure5());
    let ids = c
        .install_intent(&Intent::Waypoint {
            src_host: "H1".into(),
            dst_host: "H3".into(),
            via: "MB".into(),
        })
        .unwrap();
    // Leg 1: S1 → S2 (2 rules incl. MB delivery), leg 2: S2 → S3 (2 rules).
    assert_eq!(ids.len(), 4);
    // S1 forwards H1-port traffic towards S2 (port 3).
    let s1 = c.rules_of(SwitchId(1));
    let r = s1
        .iter()
        .find(|r| r.fields.in_port == Some(PortNo(1)))
        .unwrap();
    assert_eq!(r.action, Action::Forward(PortNo(3)));
    // S2: from S1 (port 1) to the middlebox port 3; from MB (port 3) onward
    // to S3 (port 2).
    let s2 = c.rules_of(SwitchId(2));
    let to_mb = s2
        .iter()
        .find(|r| r.fields.in_port == Some(PortNo(1)))
        .unwrap();
    assert_eq!(to_mb.action, Action::Forward(PortNo(3)));
    let from_mb = s2
        .iter()
        .find(|r| r.fields.in_port == Some(PortNo(3)))
        .unwrap();
    assert_eq!(from_mb.action, Action::Forward(PortNo(2)));
    // S3 delivers to H3's port 2.
    let s3 = c.rules_of(SwitchId(3));
    let deliver = s3
        .iter()
        .find(|r| r.fields.in_port == Some(PortNo(1)))
        .unwrap();
    assert_eq!(deliver.action, Action::Forward(PortNo(2)));
}

#[test]
fn waypoint_rejects_non_middlebox() {
    let mut c = Controller::new(gen::figure5());
    let err = c
        .install_intent(&Intent::Waypoint {
            src_host: "H1".into(),
            dst_host: "H3".into(),
            via: "H2".into(),
        })
        .unwrap_err();
    assert_eq!(err, ControllerError::NotAMiddlebox("H2".into()));
}

#[test]
fn te_splits_on_source_port_halves() {
    // Figure 3 shape on figure5's topology: S1→S2→S3 vs S1→S3 direct.
    let mut c = Controller::new(gen::figure5());
    let ids = c
        .install_intent(&Intent::TrafficEngineering {
            src_host: "H1".into(),
            dst_host: "H3".into(),
            path_a: vec![1, 2, 3],
            path_b: vec![1, 3],
        })
        .unwrap();
    assert_eq!(ids.len(), 5); // 3 hops + 2 hops
    let s1 = c.rules_of(SwitchId(1));
    let low = s1
        .iter()
        .find(|r| r.fields.src_port == PortRange::new(0, 0x7fff))
        .unwrap();
    let high = s1
        .iter()
        .find(|r| r.fields.src_port == PortRange::new(0x8000, u16::MAX))
        .unwrap();
    assert_eq!(low.action, Action::Forward(PortNo(3))); // via S2
    assert_eq!(high.action, Action::Forward(PortNo(4))); // direct to S3
}

#[test]
fn te_rejects_paths_not_anchored_at_hosts() {
    let mut c = Controller::new(gen::figure5());
    let err = c
        .install_intent(&Intent::TrafficEngineering {
            src_host: "H1".into(),
            dst_host: "H3".into(),
            path_a: vec![2, 3],
            path_b: vec![1, 3],
        })
        .unwrap_err();
    assert!(matches!(err, ControllerError::BadPath(_)));
}

#[test]
fn te_rejects_disconnected_path() {
    let mut c = Controller::new(gen::figure5());
    let err = c
        .install_intent(&Intent::TrafficEngineering {
            src_host: "H1".into(),
            dst_host: "H3".into(),
            path_a: vec![1, 3],
            // S3 and S1 are adjacent but [1, 2, 3] skipping the S2→S3 link
            // backwards is fine; use a truly absent adjacency: S3 → S1 → S3.
            path_b: vec![1, 1, 3],
        })
        .unwrap_err();
    assert!(matches!(err, ControllerError::Disconnected(..)));
}

// ---------------------------------------------------------------- synth

#[test]
fn prefix_pool_is_deterministic_and_sized() {
    let a = synth::prefix_pool(500, 7);
    let b = synth::prefix_pool(500, 7);
    assert_eq!(a, b);
    assert_eq!(a.len(), 500);
    let c = synth::prefix_pool(500, 8);
    assert_ne!(a, c);
}

#[test]
fn prefix_pool_masks_host_bits() {
    for p in synth::prefix_pool(300, 3) {
        assert_eq!(
            p.ip,
            veridp_switch::prefix_mask(p.ip, p.plen),
            "{:x}/{}",
            p.ip,
            p.plen
        );
        assert!(p.plen >= 16 && p.plen <= 32);
    }
}

#[test]
fn prefix_pool_contains_overlaps() {
    let pool = synth::prefix_pool(400, 11);
    let overlapping = pool.iter().any(|a| {
        pool.iter()
            .any(|b| a.plen < b.plen && veridp_switch::prefix_mask(b.ip, a.plen) == a.ip)
    });
    assert!(overlapping, "pool should contain covering prefixes");
}

#[test]
fn install_rib_populates_all_switches() {
    let mut c = Controller::new(gen::internet2());
    let added = synth::install_rib(&mut c, 50, 42);
    assert_eq!(added, 50 * 9);
    for s in c.topo().switches().map(|s| s.id).collect::<Vec<_>>() {
        assert_eq!(c.rules_of(s).len(), 50);
    }
}

#[test]
fn single_switch_rules_use_local_ports() {
    let topo = gen::internet2();
    let s = topo.switch_by_name("CHIC").unwrap();
    let rules = synth::single_switch_rules(&topo, s, 100, 5);
    assert_eq!(rules.len(), 100);
    let valid: Vec<PortNo> = topo
        .neighbors(s)
        .into_iter()
        .map(|(p, _)| p)
        .chain(std::iter::once(PortNo(1)))
        .collect();
    for (_, _, action) in &rules {
        let Action::Forward(p) = action else {
            panic!("expected forward")
        };
        assert!(valid.contains(p), "port {p} not on CHIC");
    }
}

#[test]
fn install_random_acls_adds_drop_rules() {
    let mut c = Controller::new(gen::fat_tree(4));
    let pairs = synth::install_random_acls(&mut c, 10, 99);
    assert_eq!(pairs.len(), 10);
    let drops: usize = c
        .logical_rules()
        .values()
        .flatten()
        .filter(|r| r.action == Action::Drop)
        .count();
    assert_eq!(drops, 10);
}
