//! Synthetic rule workloads.
//!
//! The paper evaluates on the Stanford backbone configuration (757 K
//! forwarding + 1.5 K ACL rules) and Internet2's public IPv4 tables (126 K
//! rules). Neither dataset ships with this repository, so these generators
//! produce rule sets with the structural properties that drive VeriDP's
//! behaviour (see DESIGN.md §2):
//!
//! * RIB-like prefix-length mix (dominated by /24s, with shorter covering
//!   prefixes and longer punch-holes);
//! * deliberate prefix *overlap*, so longest-prefix/priority interaction is
//!   exercised — the situation where priority faults matter;
//! * end-to-end consistency: every prefix has an owner edge port, and every
//!   switch forwards the prefix along a shortest path towards it, so path
//!   tables contain real multi-hop paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use veridp_packet::SwitchId;
use veridp_switch::{Action, Match, PortRange};
use veridp_topo::{HostRole, Topology};

use crate::compiler::Controller;

/// A generated destination prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prefix {
    pub ip: u32,
    pub plen: u8,
}

/// Draw a prefix length with a RIB-like distribution.
fn draw_plen(rng: &mut StdRng) -> u8 {
    match rng.gen_range(0..100u32) {
        0..=9 => 16,
        10..=24 => 20,
        25..=79 => 24,
        80..=92 => 28,
        _ => 32,
    }
}

/// Generate `num` prefixes; roughly 30% are sub-prefixes of earlier ones
/// (overlap), the rest fresh draws from private address space. Deterministic
/// in `seed`.
pub fn prefix_pool(num: usize, seed: u64) -> Vec<Prefix> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Prefix> = Vec::with_capacity(num);
    while out.len() < num {
        let overlap = !out.is_empty() && rng.gen_bool(0.3);
        let p = if overlap {
            // Take an earlier prefix and specialize it.
            let parent = out[rng.gen_range(0..out.len())];
            if parent.plen >= 30 {
                continue;
            }
            let extra = rng.gen_range(2..=(32 - parent.plen).min(8));
            let plen = parent.plen + extra;
            let host_bits = 32 - plen as u32;
            let sub: u32 = rng.gen::<u32>() & !((1u64 << host_bits).wrapping_sub(1) as u32);
            let keep = if parent.plen == 0 {
                0
            } else {
                u32::MAX << (32 - parent.plen as u32)
            };
            Prefix {
                ip: (parent.ip & keep) | (sub & !keep),
                plen,
            }
        } else {
            let plen = draw_plen(&mut rng);
            let base = match rng.gen_range(0..3u8) {
                0 => 0x0a00_0000u32 | (rng.gen::<u32>() & 0x00ff_ffff), // 10/8
                1 => 0xac10_0000u32 | (rng.gen::<u32>() & 0x000f_ffff), // 172.16/12
                _ => 0xc0a8_0000u32 | (rng.gen::<u32>() & 0x0000_ffff), // 192.168/16
            };
            Prefix {
                ip: veridp_switch::prefix_mask(base, plen),
                plen,
            }
        };
        out.push(Prefix {
            ip: veridp_switch::prefix_mask(p.ip, p.plen),
            plen: p.plen,
        });
    }
    out
}

/// Install a synthetic RIB on every switch of `ctrl`'s topology:
/// `num_prefixes` destination prefixes, each owned by a random host port and
/// routed towards it along shortest paths — with the next hop drawn
/// uniformly from the *equal-cost set* per (prefix, switch). The per-prefix
/// ECMP choice is what gives a pair of edge ports several distinct paths in
/// the path table, the multiplicity Fig. 6 measures on real configurations.
/// Returns the number of rules added (≈ prefixes × switches).
pub fn install_rib(ctrl: &mut Controller, num_prefixes: usize, seed: u64) -> usize {
    use std::collections::HashMap;
    let topo = ctrl.topo().clone();
    let hosts: Vec<_> = topo
        .hosts()
        .iter()
        .filter(|h| h.role == HostRole::Host)
        .cloned()
        .collect();
    assert!(!hosts.is_empty(), "topology has no hosts to own prefixes");
    let switches: Vec<SwitchId> = topo.switches().map(|s| s.id).collect();
    let prefixes = prefix_pool(num_prefixes, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut dist_cache: HashMap<SwitchId, HashMap<SwitchId, u32>> = HashMap::new();

    let mut added = 0;
    for p in prefixes {
        let owner = &hosts[rng.gen_range(0..hosts.len())];
        let fields = Match::dst_prefix(p.ip, p.plen);
        let target = owner.attached.switch;
        let dist = dist_cache
            .entry(target)
            .or_insert_with(|| topo.distances_to(target))
            .clone();
        for &s in &switches {
            let action = if s == target {
                Action::Forward(owner.attached.port)
            } else {
                let choices = topo.ecmp_ports_towards(s, &dist);
                if choices.is_empty() {
                    continue;
                }
                Action::Forward(choices[rng.gen_range(0..choices.len())])
            };
            ctrl.add_rule(s, p.plen as u16, fields, action);
            added += 1;
        }
    }
    added
}

/// Synthetic rules for a *single* switch: destination prefixes with next hops
/// drawn from the switch's wired ports. Used by the incremental-update
/// experiment (Fig. 14), which feeds one switch's table rule-by-rule.
pub fn single_switch_rules(
    topo: &Topology,
    s: SwitchId,
    num: usize,
    seed: u64,
) -> Vec<(u16, Match, Action)> {
    let ports: Vec<_> = topo
        .neighbors(s)
        .into_iter()
        .map(|(p, _)| p)
        .chain(
            topo.host_ports()
                .into_iter()
                .filter(|p| p.switch == s)
                .map(|p| p.port),
        )
        .collect();
    assert!(!ports.is_empty(), "switch {s} has no usable ports");
    let mut rng = StdRng::seed_from_u64(seed);
    prefix_pool(num, seed.wrapping_add(1))
        .into_iter()
        .map(|p| {
            let port = ports[rng.gen_range(0..ports.len())];
            (
                p.plen as u16,
                Match::dst_prefix(p.ip, p.plen),
                Action::Forward(port),
            )
        })
        .collect()
}

/// Install `num` random ACL deny rules between host pairs (the Stanford
/// configuration's 1.5 K ACLs, scaled). Returns the host-pair list for later
/// auditing.
pub fn install_random_acls(ctrl: &mut Controller, num: usize, seed: u64) -> Vec<(String, String)> {
    let hosts: Vec<_> = ctrl
        .topo()
        .hosts()
        .iter()
        .filter(|h| h.role == HostRole::Host)
        .map(|h| h.name.clone())
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(num);
    for _ in 0..num {
        let a = hosts[rng.gen_range(0..hosts.len())].clone();
        let mut b = hosts[rng.gen_range(0..hosts.len())].clone();
        while b == a {
            b = hosts[rng.gen_range(0..hosts.len())].clone();
        }
        let ports = if rng.gen_bool(0.5) {
            PortRange::ANY
        } else {
            PortRange::exact(rng.gen_range(1..1024))
        };
        ctrl.install_intent(&crate::Intent::Acl {
            src_host: a.clone(),
            dst_host: b.clone(),
            dst_ports: ports,
        })
        .expect("hosts exist");
        pairs.push((a, b));
    }
    pairs
}
