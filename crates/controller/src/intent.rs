//! Operator intents (§2.1, §2.3).

use veridp_switch::PortRange;

/// A high-level policy the operator wants the network to enforce.
///
/// Intents reference hosts and middleboxes by their topology names; the
/// compiler resolves them against the [`veridp_topo::Topology`].
#[derive(Debug, Clone, PartialEq)]
pub enum Intent {
    /// Pairwise reachability: shortest-path forwarding between every pair of
    /// host subnets (the baseline invariant set).
    Connectivity,
    /// Deny traffic from `src_host`'s subnet to `dst_host`'s subnet on the
    /// given destination ports (compiled to high-priority drop rules on the
    /// destination's edge switch).
    Acl {
        src_host: String,
        dst_host: String,
        dst_ports: PortRange,
    },
    /// Traffic from `src_host` to `dst_host` must traverse middlebox `via`
    /// before delivery (Figure 2's firewall chaining).
    Waypoint {
        src_host: String,
        dst_host: String,
        via: String,
    },
    /// Split traffic from `src_host` to `dst_host` across the two given
    /// switch-level paths by source-port range: the lower half of the L4
    /// source-port space takes `path_a`, the upper half takes `path_b`
    /// (Figure 3's two-tunnel load balancing).
    TrafficEngineering {
        src_host: String,
        dst_host: String,
        path_a: Vec<u32>,
        path_b: Vec<u32>,
    },
}
