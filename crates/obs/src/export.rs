//! Snapshot rendering: one JSON document and Prometheus text exposition.
//!
//! Both renderings are deterministic (metrics sorted by name, events by
//! sequence) so CI artifacts diff cleanly across runs of the same workload.
//! Histograms are exposed as Prometheus *summaries* (pre-computed
//! quantiles) rather than `histogram` types — shipping all 976 log-linear
//! buckets per metric would bloat the exposition for no consumer we have.

use std::fmt::Write as _;

use crate::events::EventRecord;
use crate::hist::HistSnapshot;

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` sorted by name.
    pub histograms: Vec<(String, HistSnapshot)>,
    /// Retained events, oldest first.
    pub events: Vec<EventRecord>,
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Snapshot {
    /// Render the snapshot as one compact JSON document:
    ///
    /// ```json
    /// {"counters":{...},"gauges":{...},
    ///  "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
    ///                        "mean":..,"p50":..,"p90":..,"p99":..,"p999":..}},
    ///  "events":[{"seq":..,"kind":"..","detail":".."}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.mean(),
                h.p50,
                h.p90,
                h.p99,
                h.p999
            );
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"kind\":\"{}\",\"detail\":\"",
                e.seq, e.kind
            );
            json_escape(&mut out, &e.detail);
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }

    /// Render the metrics (events excluded) in Prometheus text-exposition
    /// format. Counters and gauges map directly; histograms become
    /// summaries with `quantile` labels plus `_sum`, `_count`, `_min`, and
    /// `_max` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [
                ("0.5", h.p50),
                ("0.9", h.p90),
                ("0.99", h.p99),
                ("0.999", h.p999),
            ] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
            let _ = writeln!(out, "{name}_min {}", if h.count == 0 { 0 } else { h.min });
            let _ = writeln!(out, "{name}_max {}", h.max);
        }
        out
    }
}
