//! Snapshot rendering: one JSON document and Prometheus text exposition.
//!
//! Both renderings are deterministic (metrics sorted by name, events by
//! sequence) so CI artifacts diff cleanly across runs of the same workload.
//! Histograms are exposed as true Prometheus `histogram` families — sparse
//! cumulative `_bucket{le="..."}` series over the log-linear buckets a
//! metric actually touched (a handful, never all 976) — plus companion
//! `_min`/`_max`/`_p*` gauge families for human eyes.

use std::fmt::Write as _;

use crate::events::EventRecord;
use crate::hist::HistSnapshot;

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` sorted by name.
    pub histograms: Vec<(String, HistSnapshot)>,
    /// `(name, sparse cumulative buckets)` sorted by name, parallel to
    /// `histograms`: only touched buckets, as `(le, cumulative_count)` with
    /// strictly increasing `le`. Feeds the Prometheus `_bucket` series.
    pub histogram_buckets: Vec<(String, Vec<(u64, u64)>)>,
    /// Retained events, oldest first.
    pub events: Vec<EventRecord>,
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Snapshot {
    /// Render the snapshot as one compact JSON document:
    ///
    /// ```json
    /// {"counters":{...},"gauges":{...},
    ///  "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
    ///                        "mean":..,"p50":..,"p90":..,"p99":..,"p999":..}},
    ///  "events":[{"seq":..,"kind":"..","detail":".."}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.mean(),
                h.p50,
                h.p90,
                h.p99,
                h.p999
            );
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"kind\":\"{}\",\"detail\":\"",
                e.seq, e.kind
            );
            json_escape(&mut out, &e.detail);
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }

    /// Render the metrics (events excluded) in Prometheus text-exposition
    /// format. Counters and gauges map directly; each histogram becomes a
    /// proper `histogram` family (sparse cumulative `_bucket{le="..."}`
    /// series plus `_sum`/`_count`) with companion `_min`/`_max`/`_p50`/
    /// `_p90`/`_p99`/`_p999` gauge families.
    ///
    /// Conformance notes (promtool grammar): every family gets `# HELP`
    /// then `# TYPE`; `le` label values are strictly increasing with a
    /// final `+Inf` whose value equals `_count`; HELP text escapes `\` and
    /// newline, label values would additionally escape `"` (ours are
    /// numeric, but the escaper handles it).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        let help = |out: &mut String, name: &str, kind: &str, text: &str| {
            let _ = write!(out, "# HELP {name} ");
            escape_help(out, text);
            out.push('\n');
            let _ = writeln!(out, "# TYPE {name} {kind}");
        };
        for (name, v) in &self.counters {
            help(&mut out, name, "counter", &describe(name));
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            help(&mut out, name, "gauge", &describe(name));
            let _ = writeln!(out, "{name} {v}");
        }
        let buckets_of = |name: &str| -> &[(u64, u64)] {
            self.histogram_buckets
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, b)| b.as_slice())
                .unwrap_or(&[])
        };
        for (name, h) in &self.histograms {
            help(&mut out, name, "histogram", &describe(name));
            for &(le, cum) in buckets_of(name) {
                let mut le_text = String::new();
                escape_label_value(&mut le_text, &le.to_string());
                let _ = writeln!(out, "{name}_bucket{{le=\"{le_text}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
            for (suffix, v) in [
                ("min", if h.count == 0 { 0 } else { h.min }),
                ("max", h.max),
                ("p50", h.p50),
                ("p90", h.p90),
                ("p99", h.p99),
                ("p999", h.p999),
            ] {
                let family = format!("{name}_{suffix}");
                help(&mut out, &family, "gauge", &describe(&family));
                let _ = writeln!(out, "{family} {v}");
            }
        }
        out
    }
}

/// HELP text escaping per the text-exposition spec: backslash and newline.
fn escape_help(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Label-value escaping per the text-exposition spec: backslash, newline,
/// and the double quote.
fn escape_label_value(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
}

/// One-line HELP text for a metric family. Known pipeline metrics get real
/// descriptions; everything else gets an honest generic line (HELP is
/// mandatory in our exposition so scrapers and linters never see a bare
/// family).
fn describe(name: &str) -> String {
    let known = match name {
        "veridp_gap_detect_ns" => {
            "End-to-end gap-detection latency: report origin stamp to verdict"
        }
        "veridp_gap_confirm_ns" => {
            "Alarm confirmation latency: first failing observation to K-of-N confirmed alarm"
        }
        "veridp_epoch_lag" => "Table epochs between a verified report's stamp and the live table",
        "veridp_snapshot_age" => {
            "Epochs between the pinned verify snapshot and the newest published"
        }
        "veridp_alarms_confirmed_total" => "Alarms that reached K-of-N confirmation",
        "veridp_net_ingest_report_ns" => "Per-report verify latency inside the ingest pumps",
        _ => "",
    };
    if known.is_empty() {
        format!("veridp metric {name}")
    } else {
        known.to_string()
    }
}
