//! Always-on, near-zero-overhead observability for the VeriDP pipeline.
//!
//! The paper's evaluation (§6) is entirely about *observed* behavior —
//! per-report verification latency distributions, path-table update cost,
//! tag-report rates — so the pipeline carries its own instrumentation
//! instead of relying on an external harness. Everything here is built
//! in-tree with zero dependencies, matching the workspace's offline
//! philosophy:
//!
//! * a global named-metric [`Registry`] of relaxed-atomic [`Counter`]s and
//!   [`Gauge`]s, resolved once per call site through const-constructible
//!   handles (the [`counter!`]/[`gauge!`]/[`histogram!`] macros);
//! * HDR-style log-linear [`Histogram`]s (p50/p90/p99/p999 + min/max/mean,
//!   ≤ 6.25 % relative bucket error) that are lock-free to record into and
//!   mergeable from per-worker [`LocalHistogram`]s at batch-join time;
//! * lightweight span timers ([`HistogramHandle::start_span`] and the
//!   decimating [`sampled_span!`] macro) for hot-path latency without
//!   paying two `Instant::now()` calls on every operation;
//! * a bounded ring buffer of structured events ([`event!`]) for the rare,
//!   interesting moments: alarms, localization verdicts, epoch bumps;
//! * one [`Snapshot`] call rendering the whole registry to a JSON document
//!   or Prometheus text-exposition format.
//!
//! # Compiling it out
//!
//! The `off` feature turns every recording call into a no-op: the crate-wide
//! [`ENABLED`] constant becomes `false` and every mutating entry point is an
//! early-returning inline function, so the optimizer deletes the calls, the
//! atomics, and (via the macros' `if ENABLED` guards) even the argument
//! formatting. The public API is unchanged — callers never need `#[cfg]`.
//!
//! # Example
//!
//! ```
//! use veridp_obs as obs;
//!
//! obs::counter!("demo_requests_total").inc();
//! obs::histogram!("demo_latency_ns").record(1_250);
//! {
//!     let _span = obs::histogram!("demo_phase_ns").start_span();
//!     // ... timed work ...
//! }
//! obs::event!("demo", "something notable happened: {}", 42);
//!
//! let snap = obs::snapshot();
//! if obs::ENABLED {
//!     assert!(snap.to_json().contains("demo_requests_total"));
//!     assert!(snap.to_prometheus().contains("# TYPE demo_latency_ns histogram"));
//! }
//! ```

mod clock;
mod events;
mod export;
mod hist;
mod http;
mod registry;

#[cfg(test)]
mod tests;

pub use clock::monotonic_ns;
pub use events::{events_dropped, events_snapshot, record_event, EventRecord, EVENT_RING_CAPACITY};
pub use export::Snapshot;
pub use hist::{HistSnapshot, Histogram, LocalHistogram};
pub use http::{serve_obs, HealthzFn, ObsServer, StatzFn};
pub use registry::{
    registry, Counter, CounterHandle, Gauge, GaugeHandle, HistogramHandle, Registry, SpanGuard,
};

/// Whether instrumentation is compiled in. `false` under the `off` feature;
/// every recording path is guarded by this constant so the optimizer removes
/// it entirely when disabled.
pub const ENABLED: bool = cfg!(not(feature = "off"));

/// Snapshot the global registry (all counters, gauges, histograms, and the
/// event ring). Deterministically ordered by metric name.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// A counter handle cached at the call site: resolves the name against the
/// global registry on first use, then costs one atomic load per call.
///
/// ```
/// veridp_obs::counter!("lib_doc_example_total").add(3);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __VERIDP_OBS_C: $crate::CounterHandle = $crate::CounterHandle::new($name);
        &__VERIDP_OBS_C
    }};
}

/// A gauge handle cached at the call site (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __VERIDP_OBS_G: $crate::GaugeHandle = $crate::GaugeHandle::new($name);
        &__VERIDP_OBS_G
    }};
}

/// A histogram handle cached at the call site (see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __VERIDP_OBS_H: $crate::HistogramHandle = $crate::HistogramHandle::new($name);
        &__VERIDP_OBS_H
    }};
}

/// Start a span against `histogram!(...)` on roughly one call in `$mask`
/// (a power of two), using a per-call-site thread-local tick so concurrent
/// workers never contend on a shared sample clock. Returns
/// `Option<SpanGuard>`; the guard records elapsed nanoseconds on drop.
///
/// Decimation keeps the common case to a thread-local increment and one
/// branch — the recorded values are an unbiased sample of the latency
/// distribution (sampling is by call count, not by duration).
#[macro_export]
macro_rules! sampled_span {
    ($h:expr, $mask:expr) => {{
        if $crate::ENABLED {
            ::std::thread_local! {
                static __VERIDP_OBS_TICK: ::std::cell::Cell<u64> =
                    const { ::std::cell::Cell::new(0) };
            }
            let __n = __VERIDP_OBS_TICK.with(|c| {
                let v = c.get();
                c.set(v.wrapping_add(1));
                v
            });
            if __n & (($mask as u64) - 1) == 0 {
                ::std::option::Option::Some($h.start_span())
            } else {
                ::std::option::Option::None
            }
        } else {
            ::std::option::Option::None
        }
    }};
}

/// Count calls *and* sample latency with one thread-local tick: every call
/// pays a thread-local increment and a branch; one call in `$mask` (a power
/// of two) adds `$mask` to `$counter` — crediting the whole batch in a
/// single shared-atomic add, so concurrent workers on the hot path never
/// ping-pong the counter's cache line — and starts a span against `$h`.
///
/// The counter runs ahead of the true call count by up to `$mask - 1` per
/// thread between batch boundaries; use it where throughput-grade totals
/// are enough and per-call accuracy is not worth a shared RMW (the
/// Algorithm 3 scan, at a few hundred nanoseconds per call, is the
/// motivating case).
#[macro_export]
macro_rules! counted_span {
    ($counter:expr, $h:expr, $mask:expr) => {{
        if $crate::ENABLED {
            ::std::thread_local! {
                static __VERIDP_OBS_TICK: ::std::cell::Cell<u64> =
                    const { ::std::cell::Cell::new(0) };
            }
            let __n = __VERIDP_OBS_TICK.with(|c| {
                let v = c.get();
                c.set(v.wrapping_add(1));
                v
            });
            if __n & (($mask as u64) - 1) == 0 {
                $counter.add($mask as u64);
                ::std::option::Option::Some($h.start_span())
            } else {
                ::std::option::Option::None
            }
        } else {
            ::std::option::Option::None
        }
    }};
}

/// Append one structured event to the bounded global ring buffer. The
/// format arguments are not even evaluated when instrumentation is compiled
/// out.
///
/// ```
/// veridp_obs::event!("epoch_bump", "table epoch now {}", 7);
/// ```
#[macro_export]
macro_rules! event {
    ($kind:expr, $($fmt:tt)*) => {
        if $crate::ENABLED {
            $crate::record_event($kind, ::std::format!($($fmt)*));
        }
    };
}
