//! Embedded scrape endpoint: a minimal blocking HTTP/1.0 server exposing
//! the live registry.
//!
//! Zero dependencies, one listener thread, one short-lived connection per
//! scrape — the right weight for a metrics port that sees a request every
//! few seconds, not a reactor's worth of machinery. Routes:
//!
//! * `GET /metrics` — Prometheus text exposition of the global registry;
//! * `GET /statz` — a caller-supplied JSON snapshot (pipeline stats the
//!   registry alone cannot see: `NetStatsSnapshot`, snapshot-table
//!   publish/reclaim counts, shard breakdown);
//! * `GET /healthz` — caller-supplied health verdict (conservation
//!   identity, pump liveness): `200` healthy, `503` violated.
//!
//! The exporter works under `obs-off` too — it serves whatever the (then
//! empty) registry holds plus the caller's closures. It lives entirely off
//! the verify hot path, so compiling it out would save nothing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Producer of the `/statz` JSON body.
pub type StatzFn = Box<dyn Fn() -> String + Send + Sync>;
/// Producer of the `/healthz` verdict: `(healthy, json_body)`.
pub type HealthzFn = Box<dyn Fn() -> (bool, String) + Send + Sync>;

/// Handle to a running scrape endpoint; dropping it (or calling
/// [`ObsServer::shutdown`]) stops the listener thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ObsServer {
    /// The bound address (resolves an `:0` request to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and join it. Idempotent.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Wake the blocking accept with one throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` and serve the scrape endpoint from a background thread.
///
/// `statz` and `healthz` are called per request from that thread; they must
/// only touch shared-atomic state (e.g. `NetStats` handles), never take
/// locks the verify path holds.
pub fn serve_obs<A: ToSocketAddrs>(
    addr: A,
    statz: StatzFn,
    healthz: HealthzFn,
) -> std::io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("veridp-obs-http".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = conn {
                    // One scrape at a time: a metrics port never needs
                    // concurrency, and serial handling keeps the thread
                    // count flat.
                    let _ = handle_conn(stream, &statz, &healthz);
                }
            }
        })?;
    Ok(ObsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Read one request head (bounded, with a timeout so a stalled client
/// cannot wedge the scrape port), route it, write one response, close.
fn handle_conn(mut stream: TcpStream, statz: &StatzFn, healthz: &HealthzFn) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "GET only\n".into())
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                crate::snapshot().to_prometheus(),
            ),
            "/statz" => ("200 OK", "application/json", statz()),
            "/healthz" => {
                let (healthy, body) = healthz();
                let status = if healthy {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                };
                (status, "application/json", body)
            }
            _ => (
                "404 Not Found",
                "text/plain",
                "try /metrics, /statz, /healthz\n".into(),
            ),
        }
    };
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
