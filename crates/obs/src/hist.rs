//! HDR-style log-linear histograms.
//!
//! Values (nanoseconds, depths, sizes — any `u64`) are binned into buckets
//! whose width grows with magnitude: values below 2^[`SUB_BITS`] get exact
//! unit buckets, and every further power-of-two range is split into
//! 2^[`SUB_BITS`] linear sub-buckets. With `SUB_BITS = 4` the relative
//! quantile error is bounded by 1/16 (6.25 %) while the whole table covers
//! the full `u64` range in [`BUCKET_COUNT`] (= 976) buckets — small enough
//! to keep one histogram per metric resident forever.
//!
//! Two flavors share the bucketing:
//!
//! * [`Histogram`] — atomic, registered in the global registry, safe to
//!   record into from any thread with relaxed ordering;
//! * [`LocalHistogram`] — plain `u64` buckets for per-worker recording on
//!   hot loops (no atomics at all), folded into a global [`Histogram`] at
//!   join time via [`Histogram::merge_local`] — the shape the sharded
//!   batch-ingest pipeline needs.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket resolution: each power-of-two range splits into `2^SUB_BITS`
/// linear buckets.
pub const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the whole `u64` range.
pub const BUCKET_COUNT: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index for a value. Total order preserving: monotone in `v`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // SUB_BITS..=63
        let sub = ((v >> (e - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB + (e - SUB_BITS) as usize * SUB + sub
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket) —
/// the value Prometheus histogram exposition uses as the `le` label, since
/// bucket values are integers and an inclusive integer bound is exactly a
/// `le` bound.
pub(crate) fn bucket_hi(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        bucket_lo(i + 1) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
pub(crate) fn bucket_lo(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let g = ((i - SUB) / SUB) as u32;
        let sub = ((i - SUB) % SUB) as u64;
        let e = g + SUB_BITS;
        (1u64 << e) + (sub << (e - SUB_BITS))
    }
}

/// Representative value reported for bucket `i` (its midpoint).
fn bucket_mid(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let lo = bucket_lo(i);
        let g = ((i - SUB) / SUB) as u32;
        let width = 1u64 << g; // 2^(e - SUB_BITS)
        lo + width / 2
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
}

impl HistSnapshot {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Quantile extraction shared by both flavors: one cumulative walk resolves
/// every quantile (the targets are nondecreasing), reporting each matched
/// bucket's midpoint clamped into the exact observed `[min, max]` envelope.
/// `buckets[0]` corresponds to absolute bucket index `first`, so callers can
/// pass just the touched range.
fn snapshot_from(
    buckets: &[u64],
    first: usize,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
) -> HistSnapshot {
    if count == 0 {
        return HistSnapshot::default();
    }
    let target = |q: f64| ((q * count as f64).ceil() as u64).clamp(1, count);
    let targets = [target(0.50), target(0.90), target(0.99), target(0.999)];
    let mut vals = [max; 4];
    let mut seen = 0u64;
    let mut k = 0usize;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        seen += c;
        while k < targets.len() && seen >= targets[k] {
            vals[k] = bucket_mid(first + i).clamp(min, max);
            k += 1;
        }
        if k == targets.len() {
            break;
        }
    }
    HistSnapshot {
        count,
        sum,
        min,
        max,
        p50: vals[0],
        p90: vals[1],
        p99: vals[2],
        p999: vals[3],
    }
}

/// Shared, lock-free histogram. All recording uses relaxed atomics; reads
/// ([`Histogram::snapshot`]) are racy-but-consistent-enough for reporting.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::ENABLED {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Record a duration as whole nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold a worker-private [`LocalHistogram`] in (batch-join time). Only
    /// walks the bucket range the worker actually hit.
    pub fn merge_local(&self, local: &LocalHistogram) {
        if !crate::ENABLED || local.count == 0 {
            return;
        }
        for i in local.lo..=local.hi {
            let c = local.buckets[i];
            if c != 0 {
                self.buckets[i].fetch_add(c, Relaxed);
            }
        }
        self.count.fetch_add(local.count, Relaxed);
        self.sum.fetch_add(local.sum, Relaxed);
        self.min.fetch_min(local.min, Relaxed);
        self.max.fetch_max(local.max, Relaxed);
    }

    /// Current summary (quantiles, extrema, mean inputs).
    pub fn snapshot(&self) -> HistSnapshot {
        let count = self.count.load(Relaxed);
        if count == 0 {
            return HistSnapshot::default();
        }
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        snapshot_from(
            &buckets,
            0,
            count,
            self.sum.load(Relaxed),
            self.min.load(Relaxed),
            self.max.load(Relaxed),
        )
    }

    /// Touched buckets as `(le, cumulative_count)` pairs, `le` strictly
    /// increasing — the Prometheus `_bucket{le="..."}` series, minus the
    /// implicit trailing `+Inf` (which equals the total count). Only
    /// nonempty buckets are emitted; cumulative sums make the sparse form
    /// lossless for any `histogram_quantile` consumer.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Relaxed);
            if c != 0 {
                cum += c;
                out.push((bucket_hi(i), cum));
            }
        }
        out
    }
}

/// Worker-private histogram: identical bucketing, plain integers, no
/// atomics. Record on the hot loop, then fold into the shared histogram
/// once at join ([`Histogram::merge_local`]).
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Lowest/highest touched bucket index — bounds the merge walks so a
    /// per-batch fold costs O(buckets hit), not O(table size).
    lo: usize,
    hi: usize,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty local histogram.
    pub fn new() -> Self {
        LocalHistogram {
            // Compiled out: keep the allocation at zero too.
            buckets: if crate::ENABLED {
                vec![0; BUCKET_COUNT]
            } else {
                Vec::new()
            },
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            lo: BUCKET_COUNT,
            hi: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        if !crate::ENABLED {
            return;
        }
        let i = bucket_index(v);
        self.buckets[i] += 1;
        self.lo = self.lo.min(i);
        self.hi = self.hi.max(i);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a duration as whole nanoseconds.
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold another local histogram in (tree-merging worker results).
    pub fn merge(&mut self, other: &LocalHistogram) {
        if !crate::ENABLED || other.count == 0 {
            return;
        }
        for i in other.lo..=other.hi {
            self.buckets[i] += other.buckets[i];
        }
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current summary. Only walks the touched bucket range.
    pub fn snapshot(&self) -> HistSnapshot {
        if self.count == 0 {
            return HistSnapshot::default();
        }
        snapshot_from(
            &self.buckets[self.lo..=self.hi],
            self.lo,
            self.count,
            self.sum,
            self.min,
            self.max,
        )
    }
}
