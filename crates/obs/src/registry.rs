//! The global named-metric registry and the call-site handles that resolve
//! against it.
//!
//! Registration happens once per `(kind, name)`; the registry hands out
//! `&'static` metric references (leaked allocations — metrics live for the
//! process lifetime by design, like the paper's always-on server counters).
//! Handles ([`CounterHandle`] etc.) are `const`-constructible so the
//! [`counter!`](crate::counter)/[`gauge!`](crate::gauge)/
//! [`histogram!`](crate::histogram) macros can cache one per call site in a
//! `static`, reducing the steady-state cost of a metric update to one
//! `OnceLock` load plus one relaxed atomic op.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::export::Snapshot;
use crate::hist::Histogram;

/// Monotonic event/occurrence counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::ENABLED {
            self.value.fetch_add(n, Relaxed);
        }
    }

    /// Publish an absolute value (single-writer mirror of a counter that
    /// already exists as a plain field, e.g. `ServerStats`). A relaxed store
    /// is cheaper than a read-modify-write on the hot path; callers must be
    /// the sole writer and the mirrored value monotonic.
    #[inline]
    pub fn store(&self, v: u64) {
        if crate::ENABLED {
            self.value.store(v, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// Instantaneous level (relaxed atomic, signed).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::ENABLED {
            self.value.store(v, Relaxed);
        }
    }

    /// Adjust the level by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        if crate::ENABLED {
            self.value.fetch_add(d, Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }
}

/// The global registry: name → metric, one map per metric kind, sorted (so
/// every snapshot and exposition is deterministically ordered).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut m = self.counters.lock().expect("obs registry poisoned");
        m.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Counter::default())))
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut m = self.gauges.lock().expect("obs registry poisoned");
        m.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Gauge::default())))
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut m = self.histograms.lock().expect("obs registry poisoned");
        m.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }

    /// Snapshot every registered metric plus the event ring.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect();
        let hists = self.histograms.lock().expect("obs registry poisoned");
        let histograms = hists
            .iter()
            .map(|(k, v)| (k.to_string(), v.snapshot()))
            .collect();
        let histogram_buckets = hists
            .iter()
            .map(|(k, v)| (k.to_string(), v.cumulative_buckets()))
            .collect();
        drop(hists);
        Snapshot {
            counters,
            gauges,
            histograms,
            histogram_buckets,
            events: crate::events_snapshot(),
        }
    }
}

/// Call-site-cached counter handle (see [`crate::counter!`]).
#[derive(Debug)]
pub struct CounterHandle {
    name: &'static str,
    slot: OnceLock<&'static Counter>,
}

impl CounterHandle {
    /// A handle for `name`; resolution is deferred to first use.
    pub const fn new(name: &'static str) -> Self {
        CounterHandle {
            name,
            slot: OnceLock::new(),
        }
    }

    #[inline]
    fn metric(&self) -> &'static Counter {
        self.slot.get_or_init(|| registry().counter(self.name))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        if crate::ENABLED {
            self.metric().inc();
        }
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::ENABLED {
            self.metric().add(n);
        }
    }

    /// Publish an absolute value (see [`Counter::store`]).
    #[inline]
    pub fn store(&self, v: u64) {
        if crate::ENABLED {
            self.metric().store(v);
        }
    }

    /// Current value (0 when compiled out).
    pub fn get(&self) -> u64 {
        if crate::ENABLED {
            self.metric().get()
        } else {
            0
        }
    }
}

/// Call-site-cached gauge handle (see [`crate::gauge!`]).
#[derive(Debug)]
pub struct GaugeHandle {
    name: &'static str,
    slot: OnceLock<&'static Gauge>,
}

impl GaugeHandle {
    /// A handle for `name`; resolution is deferred to first use.
    pub const fn new(name: &'static str) -> Self {
        GaugeHandle {
            name,
            slot: OnceLock::new(),
        }
    }

    #[inline]
    fn metric(&self) -> &'static Gauge {
        self.slot.get_or_init(|| registry().gauge(self.name))
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::ENABLED {
            self.metric().set(v);
        }
    }

    /// Adjust the level by `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        if crate::ENABLED {
            self.metric().add(d);
        }
    }

    /// Current level (0 when compiled out).
    pub fn get(&self) -> i64 {
        if crate::ENABLED {
            self.metric().get()
        } else {
            0
        }
    }
}

/// Call-site-cached histogram handle (see [`crate::histogram!`]).
#[derive(Debug)]
pub struct HistogramHandle {
    name: &'static str,
    slot: OnceLock<&'static Histogram>,
}

impl HistogramHandle {
    /// A handle for `name`; resolution is deferred to first use.
    pub const fn new(name: &'static str) -> Self {
        HistogramHandle {
            name,
            slot: OnceLock::new(),
        }
    }

    #[inline]
    fn metric(&self) -> &'static Histogram {
        self.slot.get_or_init(|| registry().histogram(self.name))
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::ENABLED {
            self.metric().record(v);
        }
    }

    /// Record a duration as whole nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        if crate::ENABLED {
            self.metric().record_duration(d);
        }
    }

    /// Fold a worker-private histogram in.
    pub fn merge_local(&self, local: &crate::LocalHistogram) {
        if crate::ENABLED {
            self.metric().merge_local(local);
        }
    }

    /// Start a span; elapsed nanoseconds are recorded when the guard drops.
    #[inline]
    pub fn start_span(&'static self) -> SpanGuard {
        SpanGuard {
            inner: if crate::ENABLED {
                Some((self, Instant::now()))
            } else {
                None
            },
        }
    }

    /// Current summary (empty when compiled out).
    pub fn snapshot(&self) -> crate::HistSnapshot {
        if crate::ENABLED {
            self.metric().snapshot()
        } else {
            crate::HistSnapshot::default()
        }
    }
}

/// Span timer guard: records elapsed wall-clock nanoseconds into its
/// histogram on drop (or never, when instrumentation is compiled out).
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(&'static HistogramHandle, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.inner.take() {
            hist.record_duration(start.elapsed());
        }
    }
}
