//! Bounded ring buffer of structured events.
//!
//! Metrics answer "how much / how fast"; the event ring answers "what were
//! the last interesting things that happened" — alarms, localization
//! verdicts, path-table epoch bumps. Events are rare by construction (the
//! hot verification path never emits one), so a mutex-guarded `VecDeque`
//! capped at [`EVENT_RING_CAPACITY`] is plenty: the newest events win,
//! `dropped` counts what scrolled off.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Maximum retained events; older entries are dropped first.
pub const EVENT_RING_CAPACITY: usize = 1024;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Global sequence number (monotonic across the process, so consumers
    /// can detect gaps from ring overflow).
    pub seq: u64,
    /// Event kind, e.g. `"alarm"`, `"localize"`, `"epoch_bump"`.
    pub kind: &'static str,
    /// Preformatted detail line.
    pub detail: String,
}

#[derive(Debug, Default)]
struct EventRing {
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<EventRecord>,
}

fn ring() -> &'static Mutex<EventRing> {
    static RING: OnceLock<Mutex<EventRing>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(EventRing::default()))
}

/// Append one event (no-op when compiled out). Prefer the
/// [`event!`](crate::event) macro, which also skips argument formatting
/// when disabled.
pub fn record_event(kind: &'static str, detail: String) {
    if !crate::ENABLED {
        return;
    }
    let mut r = ring().lock().expect("obs event ring poisoned");
    let seq = r.next_seq;
    r.next_seq += 1;
    if r.ring.len() == EVENT_RING_CAPACITY {
        r.ring.pop_front();
        r.dropped += 1;
    }
    r.ring.push_back(EventRecord { seq, kind, detail });
}

/// Copy of the currently retained events, oldest first.
pub fn events_snapshot() -> Vec<EventRecord> {
    if !crate::ENABLED {
        return Vec::new();
    }
    ring()
        .lock()
        .expect("obs event ring poisoned")
        .ring
        .iter()
        .cloned()
        .collect()
}

/// Events evicted from the ring so far (diagnostics).
pub fn events_dropped() -> u64 {
    if !crate::ENABLED {
        return 0;
    }
    ring().lock().expect("obs event ring poisoned").dropped
}
