//! Unit tests for the observability layer.
//!
//! The registry is process-global and the test harness runs tests
//! concurrently, so every test uses metric names unique to itself.

#[cfg(not(feature = "off"))]
use crate::hist::{bucket_index, bucket_lo, BUCKET_COUNT};
#[cfg(not(feature = "off"))]
use crate::{registry, Histogram, LocalHistogram};

#[cfg(not(feature = "off"))]
#[test]
fn enabled_by_default() {
    assert!(std::hint::black_box(crate::ENABLED));
}

/// With the `off` feature every recording call must be a no-op and every
/// read must come back empty — this is the compile-out contract.
#[cfg(feature = "off")]
#[test]
fn off_feature_noops_everything() {
    assert!(!std::hint::black_box(crate::ENABLED));
    let c = crate::counter!("off_counter");
    c.inc();
    c.add(100);
    c.store(7);
    assert_eq!(c.get(), 0);
    let g = crate::gauge!("off_gauge");
    g.set(5);
    assert_eq!(g.get(), 0);
    let h = crate::histogram!("off_hist");
    h.record(123);
    {
        let _g = h.start_span();
    }
    assert_eq!(h.snapshot().count, 0);
    crate::event!("off_event", "never formatted {}", 1);
    assert!(crate::events_snapshot().is_empty());
    let snap = crate::snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
    assert_eq!(
        snap.to_json(),
        "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"events\":[]}"
    );
}

#[cfg(not(feature = "off"))]
#[test]
fn counter_inc_add_store() {
    let c = crate::counter!("test_counter_inc_add_store");
    assert_eq!(c.get(), 0);
    c.inc();
    c.add(4);
    assert_eq!(c.get(), 5);
    c.store(42);
    assert_eq!(c.get(), 42);
}

#[cfg(not(feature = "off"))]
#[test]
fn counter_handles_share_by_name() {
    crate::counter!("test_counter_shared").add(2);
    crate::counter!("test_counter_shared").add(3);
    assert_eq!(registry().counter("test_counter_shared").get(), 5);
}

#[cfg(not(feature = "off"))]
#[test]
fn gauge_set_and_add() {
    let g = crate::gauge!("test_gauge_set_add");
    g.set(10);
    g.add(-3);
    assert_eq!(g.get(), 7);
}

#[cfg(not(feature = "off"))]
#[test]
fn bucket_index_is_monotone_and_consistent_with_lo() {
    let mut samples: Vec<u64> = Vec::new();
    for e in 0..64u32 {
        for &off in &[0u64, 1, 3] {
            samples.push((1u64 << e).saturating_add(off << e.saturating_sub(5)));
        }
    }
    samples.sort_unstable();
    let mut prev = 0usize;
    for v in samples {
        let i = bucket_index(v);
        assert!(i >= prev, "bucket index not monotone at {v}");
        assert!(i < BUCKET_COUNT);
        assert!(bucket_lo(i) <= v, "lo({i}) > {v}");
        prev = i;
    }
    // Exact unit buckets below 16.
    for v in 0..16u64 {
        assert_eq!(bucket_index(v), v as usize);
        assert_eq!(bucket_lo(v as usize), v);
    }
    assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
}

#[cfg(not(feature = "off"))]
#[test]
fn histogram_quantiles_within_bucket_error() {
    let h = Histogram::new();
    for v in 1..=1000u64 {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 1000);
    assert_eq!(s.min, 1);
    assert_eq!(s.max, 1000);
    assert_eq!(s.sum, 500_500);
    // Log-linear bucketing bounds relative error by 1/16 ≈ 6.25 %.
    let within = |got: u64, want: f64| {
        let err = (got as f64 - want).abs() / want;
        assert!(err < 0.08, "quantile {got} too far from {want}");
    };
    within(s.p50, 500.0);
    within(s.p90, 900.0);
    within(s.p99, 990.0);
    within(s.p999, 999.0);
    assert!((s.mean() - 500.5).abs() < 0.001);
}

#[cfg(not(feature = "off"))]
#[test]
fn histogram_empty_snapshot_is_zero() {
    let h = Histogram::new();
    let s = h.snapshot();
    assert_eq!(s.count, 0);
    assert_eq!(s.max, 0);
    assert_eq!(s.p999, 0);
    assert_eq!(s.mean(), 0.0);
}

#[cfg(not(feature = "off"))]
#[test]
fn local_histogram_merge_equals_direct_recording() {
    let mut a = LocalHistogram::new();
    let mut b = LocalHistogram::new();
    let mut direct = LocalHistogram::new();
    for v in 0..500u64 {
        let v = v * 17 % 10_000;
        if v % 2 == 0 {
            a.record(v);
        } else {
            b.record(v);
        }
        direct.record(v);
    }
    a.merge(&b);
    assert_eq!(a.snapshot(), direct.snapshot());
}

#[cfg(not(feature = "off"))]
#[test]
fn merge_local_folds_into_shared() {
    let shared = Histogram::new();
    let mut w1 = LocalHistogram::new();
    let mut w2 = LocalHistogram::new();
    for v in [5u64, 50, 500, 5_000] {
        w1.record(v);
        w2.record(v * 2);
    }
    shared.merge_local(&w1);
    shared.merge_local(&w2);
    let s = shared.snapshot();
    assert_eq!(s.count, 8);
    assert_eq!(s.min, 5);
    assert_eq!(s.max, 10_000);
}

#[cfg(not(feature = "off"))]
#[test]
fn span_guard_records_on_drop() {
    let h = crate::histogram!("test_span_guard_ns");
    {
        let _g = h.start_span();
        std::hint::black_box(1 + 1);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 1);
}

#[cfg(not(feature = "off"))]
#[test]
fn sampled_span_decimates() {
    let h = crate::histogram!("test_sampled_span_ns");
    for _ in 0..256 {
        let _g = crate::sampled_span!(h, 64);
    }
    // One in 64 → exactly 4 on this thread's fresh per-call-site tick.
    assert_eq!(h.snapshot().count, 4);
}

#[cfg(not(feature = "off"))]
#[test]
fn counted_span_batches_counter_and_decimates() {
    let c = crate::counter!("test_counted_span_total");
    let h = crate::histogram!("test_counted_span_ns");
    for _ in 0..256 {
        let _g = crate::counted_span!(c, h, 64);
    }
    // Four batch boundaries, each crediting the full 64-call batch up
    // front and timing one call.
    assert_eq!(c.get(), 256);
    assert_eq!(h.snapshot().count, 4);
    // A fresh call site has its own tick, so its first call opens a new
    // batch; the span lands once the guard drops.
    {
        let _g = crate::counted_span!(c, h, 64);
        assert_eq!(c.get(), 320);
    }
    assert_eq!(h.snapshot().count, 5);
}

#[cfg(not(feature = "off"))]
#[test]
fn event_ring_bounds_and_sequences() {
    // Events are global; only assert relative behavior.
    let before = crate::events_snapshot().len();
    crate::event!("test_event", "first {}", 1);
    crate::event!("test_event", "second {}", 2);
    let evs = crate::events_snapshot();
    assert!(evs.len() >= 2 && evs.len() <= crate::EVENT_RING_CAPACITY);
    assert!(evs.len() >= before.min(crate::EVENT_RING_CAPACITY));
    let ours: Vec<_> = evs.iter().filter(|e| e.kind == "test_event").collect();
    assert!(ours.len() >= 2);
    // Sequence numbers strictly increase in ring order.
    for w in evs.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
}

#[cfg(not(feature = "off"))]
#[test]
fn snapshot_renders_json_and_prometheus() {
    crate::counter!("test_export_counter_total").add(7);
    crate::gauge!("test_export_gauge").set(-3);
    let h = crate::histogram!("test_export_latency_ns");
    h.record(100);
    h.record(200);
    crate::event!("test_export", "detail with \"quotes\" and\nnewline");

    let snap = crate::snapshot();
    let json = snap.to_json();
    assert!(json.contains("\"test_export_counter_total\":7"));
    assert!(json.contains("\"test_export_gauge\":-3"));
    assert!(json.contains("\"test_export_latency_ns\":{\"count\":2"));
    assert!(json.contains("\\\"quotes\\\" and\\nnewline"));
    // Balanced braces/brackets — cheap well-formedness check.
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced JSON"
    );

    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE test_export_counter_total counter"));
    assert!(prom.contains("test_export_counter_total 7"));
    assert!(prom.contains("# TYPE test_export_gauge gauge"));
    assert!(prom.contains("# TYPE test_export_latency_ns summary"));
    assert!(prom.contains("test_export_latency_ns{quantile=\"0.5\"}"));
    assert!(prom.contains("test_export_latency_ns_count 2"));
    assert!(prom.contains("test_export_latency_ns_sum 300"));
}

#[cfg(not(feature = "off"))]
#[test]
fn snapshot_is_sorted_by_name() {
    crate::counter!("test_sort_zz").inc();
    crate::counter!("test_sort_aa").inc();
    let snap = crate::snapshot();
    let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
}
