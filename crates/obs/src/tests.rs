//! Unit tests for the observability layer.
//!
//! The registry is process-global and the test harness runs tests
//! concurrently, so every test uses metric names unique to itself.

#[cfg(not(feature = "off"))]
use crate::hist::{bucket_index, bucket_lo, BUCKET_COUNT};
#[cfg(not(feature = "off"))]
use crate::{registry, Histogram, LocalHistogram};

#[cfg(not(feature = "off"))]
#[test]
fn enabled_by_default() {
    assert!(std::hint::black_box(crate::ENABLED));
}

/// With the `off` feature every recording call must be a no-op and every
/// read must come back empty — this is the compile-out contract.
#[cfg(feature = "off")]
#[test]
fn off_feature_noops_everything() {
    assert!(!std::hint::black_box(crate::ENABLED));
    let c = crate::counter!("off_counter");
    c.inc();
    c.add(100);
    c.store(7);
    assert_eq!(c.get(), 0);
    let g = crate::gauge!("off_gauge");
    g.set(5);
    assert_eq!(g.get(), 0);
    let h = crate::histogram!("off_hist");
    h.record(123);
    {
        let _g = h.start_span();
    }
    assert_eq!(h.snapshot().count, 0);
    crate::event!("off_event", "never formatted {}", 1);
    assert!(crate::events_snapshot().is_empty());
    let snap = crate::snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
    assert_eq!(
        snap.to_json(),
        "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"events\":[]}"
    );
}

#[cfg(not(feature = "off"))]
#[test]
fn counter_inc_add_store() {
    let c = crate::counter!("test_counter_inc_add_store");
    assert_eq!(c.get(), 0);
    c.inc();
    c.add(4);
    assert_eq!(c.get(), 5);
    c.store(42);
    assert_eq!(c.get(), 42);
}

#[cfg(not(feature = "off"))]
#[test]
fn counter_handles_share_by_name() {
    crate::counter!("test_counter_shared").add(2);
    crate::counter!("test_counter_shared").add(3);
    assert_eq!(registry().counter("test_counter_shared").get(), 5);
}

#[cfg(not(feature = "off"))]
#[test]
fn gauge_set_and_add() {
    let g = crate::gauge!("test_gauge_set_add");
    g.set(10);
    g.add(-3);
    assert_eq!(g.get(), 7);
}

#[cfg(not(feature = "off"))]
#[test]
fn bucket_index_is_monotone_and_consistent_with_lo() {
    let mut samples: Vec<u64> = Vec::new();
    for e in 0..64u32 {
        for &off in &[0u64, 1, 3] {
            samples.push((1u64 << e).saturating_add(off << e.saturating_sub(5)));
        }
    }
    samples.sort_unstable();
    let mut prev = 0usize;
    for v in samples {
        let i = bucket_index(v);
        assert!(i >= prev, "bucket index not monotone at {v}");
        assert!(i < BUCKET_COUNT);
        assert!(bucket_lo(i) <= v, "lo({i}) > {v}");
        prev = i;
    }
    // Exact unit buckets below 16.
    for v in 0..16u64 {
        assert_eq!(bucket_index(v), v as usize);
        assert_eq!(bucket_lo(v as usize), v);
    }
    assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
}

#[cfg(not(feature = "off"))]
#[test]
fn histogram_quantiles_within_bucket_error() {
    let h = Histogram::new();
    for v in 1..=1000u64 {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 1000);
    assert_eq!(s.min, 1);
    assert_eq!(s.max, 1000);
    assert_eq!(s.sum, 500_500);
    // Log-linear bucketing bounds relative error by 1/16 ≈ 6.25 %.
    let within = |got: u64, want: f64| {
        let err = (got as f64 - want).abs() / want;
        assert!(err < 0.08, "quantile {got} too far from {want}");
    };
    within(s.p50, 500.0);
    within(s.p90, 900.0);
    within(s.p99, 990.0);
    within(s.p999, 999.0);
    assert!((s.mean() - 500.5).abs() < 0.001);
}

#[cfg(not(feature = "off"))]
#[test]
fn histogram_empty_snapshot_is_zero() {
    let h = Histogram::new();
    let s = h.snapshot();
    assert_eq!(s.count, 0);
    assert_eq!(s.max, 0);
    assert_eq!(s.p999, 0);
    assert_eq!(s.mean(), 0.0);
}

#[cfg(not(feature = "off"))]
#[test]
fn local_histogram_merge_equals_direct_recording() {
    let mut a = LocalHistogram::new();
    let mut b = LocalHistogram::new();
    let mut direct = LocalHistogram::new();
    for v in 0..500u64 {
        let v = v * 17 % 10_000;
        if v % 2 == 0 {
            a.record(v);
        } else {
            b.record(v);
        }
        direct.record(v);
    }
    a.merge(&b);
    assert_eq!(a.snapshot(), direct.snapshot());
}

#[cfg(not(feature = "off"))]
#[test]
fn merge_local_folds_into_shared() {
    let shared = Histogram::new();
    let mut w1 = LocalHistogram::new();
    let mut w2 = LocalHistogram::new();
    for v in [5u64, 50, 500, 5_000] {
        w1.record(v);
        w2.record(v * 2);
    }
    shared.merge_local(&w1);
    shared.merge_local(&w2);
    let s = shared.snapshot();
    assert_eq!(s.count, 8);
    assert_eq!(s.min, 5);
    assert_eq!(s.max, 10_000);
}

#[cfg(not(feature = "off"))]
#[test]
fn span_guard_records_on_drop() {
    let h = crate::histogram!("test_span_guard_ns");
    {
        let _g = h.start_span();
        std::hint::black_box(1 + 1);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 1);
}

#[cfg(not(feature = "off"))]
#[test]
fn sampled_span_decimates() {
    let h = crate::histogram!("test_sampled_span_ns");
    for _ in 0..256 {
        let _g = crate::sampled_span!(h, 64);
    }
    // One in 64 → exactly 4 on this thread's fresh per-call-site tick.
    assert_eq!(h.snapshot().count, 4);
}

#[cfg(not(feature = "off"))]
#[test]
fn counted_span_batches_counter_and_decimates() {
    let c = crate::counter!("test_counted_span_total");
    let h = crate::histogram!("test_counted_span_ns");
    for _ in 0..256 {
        let _g = crate::counted_span!(c, h, 64);
    }
    // Four batch boundaries, each crediting the full 64-call batch up
    // front and timing one call.
    assert_eq!(c.get(), 256);
    assert_eq!(h.snapshot().count, 4);
    // A fresh call site has its own tick, so its first call opens a new
    // batch; the span lands once the guard drops.
    {
        let _g = crate::counted_span!(c, h, 64);
        assert_eq!(c.get(), 320);
    }
    assert_eq!(h.snapshot().count, 5);
}

#[cfg(not(feature = "off"))]
#[test]
fn event_ring_bounds_and_sequences() {
    // Events are global; only assert relative behavior.
    let before = crate::events_snapshot().len();
    crate::event!("test_event", "first {}", 1);
    crate::event!("test_event", "second {}", 2);
    let evs = crate::events_snapshot();
    assert!(evs.len() >= 2 && evs.len() <= crate::EVENT_RING_CAPACITY);
    assert!(evs.len() >= before.min(crate::EVENT_RING_CAPACITY));
    let ours: Vec<_> = evs.iter().filter(|e| e.kind == "test_event").collect();
    assert!(ours.len() >= 2);
    // Sequence numbers strictly increase in ring order.
    for w in evs.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
}

#[cfg(not(feature = "off"))]
#[test]
fn snapshot_renders_json_and_prometheus() {
    crate::counter!("test_export_counter_total").add(7);
    crate::gauge!("test_export_gauge").set(-3);
    let h = crate::histogram!("test_export_latency_ns");
    h.record(100);
    h.record(200);
    crate::event!("test_export", "detail with \"quotes\" and\nnewline");

    let snap = crate::snapshot();
    let json = snap.to_json();
    assert!(json.contains("\"test_export_counter_total\":7"));
    assert!(json.contains("\"test_export_gauge\":-3"));
    assert!(json.contains("\"test_export_latency_ns\":{\"count\":2"));
    assert!(json.contains("\\\"quotes\\\" and\\nnewline"));
    // Balanced braces/brackets — cheap well-formedness check.
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced JSON"
    );

    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE test_export_counter_total counter"));
    assert!(prom.contains("test_export_counter_total 7"));
    assert!(prom.contains("# TYPE test_export_gauge gauge"));
    assert!(prom.contains("# TYPE test_export_latency_ns histogram"));
    assert!(prom.contains("test_export_latency_ns_bucket{le=\"+Inf\"} 2"));
    assert!(prom.contains("test_export_latency_ns_count 2"));
    assert!(prom.contains("test_export_latency_ns_sum 300"));
}

#[cfg(not(feature = "off"))]
#[test]
fn snapshot_is_sorted_by_name() {
    crate::counter!("test_sort_zz").inc();
    crate::counter!("test_sort_aa").inc();
    let snap = crate::snapshot();
    let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
}

#[test]
fn monotonic_ns_behaves() {
    let a = crate::monotonic_ns();
    let b = crate::monotonic_ns();
    if crate::ENABLED {
        assert!(a > 0, "enabled clock never reads 0");
        assert!(b >= a, "monotonic");
    } else {
        assert_eq!((a, b), (0, 0), "compiled out means unstamped");
    }
}

/// Promtool-grammar conformance of the full text exposition: line shapes,
/// metric/label name validity, HELP/TYPE pairing, `le` ordering, and the
/// histogram's internal identities.
#[cfg(not(feature = "off"))]
#[test]
fn prometheus_exposition_conforms() {
    crate::counter!("test_conform_total").add(3);
    crate::gauge!("test_conform_level").set(-9);
    let h = crate::histogram!("test_conform_ns");
    for v in [0u64, 1, 17, 500, 1_000_000, u64::MAX] {
        h.record(v);
    }

    let prom = crate::snapshot().to_prometheus();
    let name_ok = |n: &str| {
        !n.is_empty()
            && n.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let label_ok = |n: &str| {
        !n.is_empty()
            && n.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    };

    let mut typed: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut helped: std::collections::HashSet<String> = std::collections::HashSet::new();
    for line in prom.lines() {
        assert!(!line.is_empty(), "no blank lines in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _text) = rest.split_once(' ').expect("HELP has text");
            assert!(name_ok(name), "bad HELP name {name:?}");
            helped.insert(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap();
            let kind = it.next().expect("TYPE has a kind");
            assert!(name_ok(name), "bad TYPE name {name:?}");
            assert!(
                ["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind),
                "bad TYPE kind {kind:?}"
            );
            assert!(helped.contains(name), "HELP must precede TYPE for {name:?}");
            assert!(
                typed.insert(name.to_string(), kind.to_string()).is_none(),
                "family {name:?} declared twice"
            );
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = line.rsplit_once(' ').expect("sample has value");
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "bad sample value {value:?}"
        );
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let rest = rest.strip_suffix('}').expect("balanced label braces");
                (n, Some(rest))
            }
            None => (series, None),
        };
        assert!(name_ok(name), "bad metric name {name:?}");
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let (lname, lval) = pair.split_once('=').expect("label pair");
                assert!(label_ok(lname), "bad label name {lname:?}");
                assert!(
                    lval.starts_with('"') && lval.ends_with('"'),
                    "unquoted label value {lval:?}"
                );
                let inner = &lval[1..lval.len() - 1];
                // Escaping: no raw quote/newline may survive; a backslash
                // may only introduce a valid escape.
                let mut chars = inner.chars();
                while let Some(c) = chars.next() {
                    assert!(c != '"' && c != '\n', "unescaped {c:?} in label value");
                    if c == '\\' {
                        let next = chars.next().expect("dangling backslash");
                        assert!(matches!(next, '\\' | '"' | 'n'), "bad escape \\{next}");
                    }
                }
            }
        }
        // Every sample must belong to a declared family (histogram samples
        // hang off the base family name).
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| typed.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        assert!(typed.contains_key(family), "undeclared family for {name:?}");
    }

    // Histogram-specific grammar: strictly increasing `le`, trailing +Inf
    // equal to _count, cumulative counts nondecreasing.
    let bucket_lines: Vec<&str> = prom
        .lines()
        .filter(|l| l.starts_with("test_conform_ns_bucket{"))
        .collect();
    assert!(bucket_lines.len() >= 2, "expected sparse buckets plus +Inf");
    let mut last_le = f64::NEG_INFINITY;
    let mut last_cum = 0u64;
    for line in &bucket_lines {
        let le_text = line
            .split("le=\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .expect("le label");
        let le = if le_text == "+Inf" {
            f64::INFINITY
        } else {
            le_text.parse::<f64>().expect("numeric le")
        };
        assert!(le > last_le, "le values must strictly increase");
        last_le = le;
        let cum: u64 = line.rsplit(' ').next().unwrap().parse().expect("count");
        assert!(cum >= last_cum, "cumulative counts nondecreasing");
        last_cum = cum;
    }
    assert!(last_le.is_infinite(), "last bucket is +Inf");
    let count: u64 = prom
        .lines()
        .find(|l| l.starts_with("test_conform_ns_count "))
        .and_then(|l| l.rsplit(' ').next())
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(last_cum, count, "+Inf bucket equals _count");
    assert!(count >= 6, "all recorded samples counted");
}

/// The embedded scrape endpoint serves all three routes over real HTTP.
#[test]
fn http_exporter_serves_routes() {
    use std::io::{Read as _, Write as _};

    crate::counter!("test_http_total").add(5);
    let healthy = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
    let h = std::sync::Arc::clone(&healthy);
    let mut srv = crate::serve_obs(
        "127.0.0.1:0",
        Box::new(|| "{\"statz\":true}".to_string()),
        Box::new(move || {
            let ok = h.load(std::sync::atomic::Ordering::Relaxed);
            (ok, format!("{{\"healthy\":{ok}}}"))
        }),
    )
    .expect("bind exporter");
    let addr = srv.local_addr();

    let get = |path: &str| -> (String, String) {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).expect("read response");
        let (head, body) = resp.split_once("\r\n\r\n").expect("header split");
        let status = head.lines().next().unwrap_or("").to_string();
        (status, body.to_string())
    };

    let (status, body) = get("/metrics");
    assert!(status.contains("200"), "metrics status {status:?}");
    if crate::ENABLED {
        assert!(body.contains("test_http_total 5"), "live registry served");
    }

    let (status, body) = get("/statz");
    assert!(status.contains("200"));
    assert_eq!(body, "{\"statz\":true}");

    let (status, body) = get("/healthz");
    assert!(status.contains("200"));
    assert!(body.contains("true"));

    healthy.store(false, std::sync::atomic::Ordering::Relaxed);
    let (status, _) = get("/healthz");
    assert!(status.contains("503"), "unhealthy flips to 503: {status:?}");

    let (status, _) = get("/nope");
    assert!(status.contains("404"));

    srv.shutdown();
    srv.shutdown(); // idempotent
}
