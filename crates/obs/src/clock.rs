//! Monotonic wall-clock reads for cross-process latency stamps.
//!
//! Gap-detection latency spans two processes: a switch agent stamps a
//! report when it leaves, and the verify server subtracts that stamp at
//! verdict time. `Instant` cannot cross a process boundary, so the stamp is
//! raw `CLOCK_MONOTONIC` nanoseconds — the one clock every process on a
//! Linux machine shares (same epoch: boot), immune to NTP steps. The shim
//! is a direct `clock_gettime` syscall binding, matching the workspace's
//! no-dependency rule; non-Linux builds fall back to `SystemTime` (still
//! comparable across processes on one host, just step-prone under clock
//! adjustments — the recorder's plausibility guard absorbs that).

/// Current monotonic time in nanoseconds, never `0` (so a reading is always
/// distinguishable from the "unstamped" wire value). Returns `0` when
/// instrumentation is compiled out — stamping and latency recording both
/// collapse to no-ops under `obs-off`.
#[inline]
pub fn monotonic_ns() -> u64 {
    if !crate::ENABLED {
        return 0;
    }
    now_ns().max(1)
}

#[cfg(target_os = "linux")]
fn now_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_MONOTONIC: i32 = 1;
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid, properly aligned timespec for the duration
    // of the call; CLOCK_MONOTONIC is always supported on Linux.
    let rc = unsafe { clock_gettime(CLOCK_MONOTONIC, &mut ts) };
    if rc != 0 {
        return 0;
    }
    (ts.tv_sec as u64)
        .saturating_mul(1_000_000_000)
        .saturating_add(ts.tv_nsec as u64)
}

#[cfg(not(target_os = "linux"))]
fn now_ns() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}
